"""Tests for the distributed layer: decomposition, exchange, runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import comm, dsl, gpu
from repro.errors import LayoutError, SimulationError
from repro.reference import apply_periodic, random_field


class TestRankLayout:
    def test_counts(self):
        lay = comm.RankLayout((64, 32, 32), (4, 2, 2))
        assert lay.num_ranks == 16
        assert lay.local_extents == (16, 16, 16)

    def test_non_divisible(self):
        with pytest.raises(LayoutError):
            comm.RankLayout((65, 32, 32), (4, 2, 2))

    def test_rank_coords_roundtrip(self):
        lay = comm.RankLayout((32, 32, 32), (2, 4, 2))
        for r in lay.ranks():
            assert lay.rank_of(lay.coords_of(r)) == r

    def test_periodic_wrap(self):
        lay = comm.RankLayout((32, 32, 32), (2, 2, 2))
        assert lay.rank_of((-1, 0, 0)) == lay.rank_of((1, 0, 0))
        assert lay.rank_of((2, 0, 0)) == lay.rank_of((0, 0, 0))

    def test_neighbors_count(self):
        lay = comm.RankLayout((32, 32, 32), (2, 2, 2))
        assert len(lay.neighbors(0)) == 26

    def test_origin(self):
        lay = comm.RankLayout((32, 32, 32), (2, 2, 2))
        origins = {lay.origin_of(r) for r in lay.ranks()}
        assert (0, 0, 0) in origins and (16, 16, 16) in origins
        assert len(origins) == 8

    def test_balanced_layout(self):
        lay = comm.balanced_layout((64, 64, 64), 8)
        assert lay.ranks_per_dim == (2, 2, 2)
        with pytest.raises(LayoutError):
            comm.balanced_layout((10, 10, 10), 7)


class TestExchange:
    def _setup(self, radius, ranks=(2, 2, 2), extents=(16, 16, 16)):
        lay = comm.RankLayout(extents, ranks)
        g = random_field(tuple(reversed(extents)), seed=9)
        fields = comm.scatter_global(g, lay, radius)
        return lay, g, fields

    def test_scatter_gather_roundtrip(self):
        lay, g, fields = self._setup(radius=2)
        assert np.array_equal(comm.gather_global(fields, lay, 2), g)

    @pytest.mark.parametrize("radius", [1, 2, 4])
    def test_halos_match_periodic_neighbors(self, radius):
        lay, g, fields = self._setup(radius, extents=(16, 16, 16))
        comm.exchange_halos(fields, lay, radius)
        # After the exchange, every rank's padded block must equal the
        # corresponding periodic window of the global field.
        gk = np.pad(g, radius, mode="wrap")
        ni, nj, nk = lay.local_extents
        for rank in lay.ranks():
            oi, oj, ok = lay.origin_of(rank)
            window = gk[
                ok:ok + nk + 2 * radius,
                oj:oj + nj + 2 * radius,
                oi:oi + ni + 2 * radius,
            ]
            assert np.array_equal(fields[rank], window), rank

    def test_message_ledger(self):
        lay, g, fields = self._setup(radius=2)
        messages = comm.exchange_halos(fields, lay, 2)
        assert len(messages) == lay.num_ranks * 26
        per_rank = sum(m.bytes for m in messages if m.dst_rank == 0)
        assert per_rank == comm.halo_bytes_per_rank(lay, 2)

    def test_halo_bytes_formula(self):
        lay = comm.RankLayout((16, 16, 16), (2, 2, 2))
        r, n = 2, 8
        faces = 6 * n * n * r
        edges = 12 * n * r * r
        corners = 8 * r**3
        assert comm.halo_bytes_per_rank(lay, r) == (faces + edges + corners) * 8

    def test_shape_validation(self):
        lay = comm.RankLayout((16, 16, 16), (2, 2, 2))
        with pytest.raises(LayoutError):
            comm.exchange_halos([np.zeros((4, 4, 4))] * 8, lay, 2)
        with pytest.raises(LayoutError):
            comm.scatter_global(np.zeros((4, 4, 4)), lay, 2)


class TestInterconnect:
    def test_postal_model(self):
        net = comm.Interconnect("t", latency_s=1e-6, bandwidth=1e10)
        assert net.message_time(1e10) == pytest.approx(1.0 + 1e-6)

    def test_paper_systems(self):
        assert comm.SLINGSHOT11_PERLMUTTER.bandwidth == 12.5e9
        # Crusher: NIC on the GCD -> more bandwidth than Perlmutter.
        assert comm.SLINGSHOT11_CRUSHER.bandwidth > comm.SLINGSHOT11_PERLMUTTER.bandwidth
        assert comm.interconnect_for("A100") is comm.SLINGSHOT11_PERLMUTTER
        with pytest.raises(SimulationError):
            comm.interconnect_for("H100")

    def test_exchange_time_concurrency(self):
        net = comm.Interconnect("t", latency_s=1e-6, bandwidth=1e10, concurrency=26)
        msgs = [comm.Message(1, 0, (1, 0, 0), 1000) for _ in range(26)]
        t = net.exchange_time(msgs, 0)
        assert t == pytest.approx(1e-6 + 26 * 1000 / 1e10)

    def test_invalid(self):
        with pytest.raises(SimulationError):
            comm.Interconnect("t", latency_s=-1, bandwidth=1e9)


class TestDistributedStencil:
    def test_step_matches_periodic_reference(self):
        case = dsl.by_name("13pt")
        s, b = case.build(), case.default_bindings()
        lay = comm.RankLayout((32, 16, 16), (2, 1, 2))
        dist = comm.DistributedStencil(s, lay, gpu.platform("PVC", "SYCL"), b)
        g = random_field((16, 16, 32), seed=4)
        dist.load_global(g)
        report = dist.step()
        expected = apply_periodic(s, g, b)
        np.testing.assert_allclose(dist.gather(), expected, rtol=1e-12, atol=1e-12)
        assert report.exchange_s > 0 and report.kernel_s > 0

    def test_multiple_steps(self):
        case = dsl.by_name("7pt")
        s, b = case.build(), case.default_bindings()
        lay = comm.RankLayout((32, 16, 16), (2, 2, 1))
        dist = comm.DistributedStencil(s, lay, gpu.platform("PVC", "SYCL"), b)
        g = random_field((16, 16, 32), seed=5)
        dist.load_global(g)
        ref = g
        for _ in range(3):
            dist.step()
            ref = apply_periodic(s, ref, b)
        np.testing.assert_allclose(dist.gather(), ref, rtol=1e-11, atol=1e-11)

    def test_step_before_load_rejected(self):
        case = dsl.by_name("7pt")
        lay = comm.RankLayout((32, 16, 16), (2, 1, 1))
        dist = comm.DistributedStencil(
            case.build(), lay, gpu.platform("PVC", "SYCL"),
            case.default_bindings(),
        )
        with pytest.raises(LayoutError):
            dist.step()

    @settings(max_examples=5, deadline=None)
    @given(
        ranks=st.sampled_from([(1, 1, 1), (2, 1, 1), (1, 2, 2), (2, 2, 2)]),
        seed=st.integers(0, 20),
    )
    def test_rank_count_invariance(self, ranks, seed):
        """The distributed result is independent of the rank grid."""
        case = dsl.by_name("7pt")
        s, b = case.build(), case.default_bindings()
        g = random_field((16, 16, 32), seed=seed)
        results = []
        lay = comm.RankLayout((32, 16, 16), ranks)
        dist = comm.DistributedStencil(s, lay, gpu.platform("PVC", "SYCL"), b)
        dist.load_global(g)
        dist.step()
        np.testing.assert_allclose(
            dist.gather(), apply_periodic(s, g, b), rtol=1e-12, atol=1e-12
        )


class TestWeakScaling:
    def test_efficiency_curve(self):
        s = dsl.by_name("13pt").build()
        curve = comm.weak_scaling(
            s, gpu.platform("A100", "CUDA"), (128, 128, 128),
            rank_counts=(1, 8, 64),
        )
        assert curve[1]["efficiency"] == 1.0
        assert curve[1]["exchange_s"] == 0.0
        # Multi-rank steps pay for the exchange; at this (communication-
        # heavy) local size the efficiency drops hard but stays positive
        # and non-increasing in rank count.
        assert 0.1 < curve[64]["efficiency"] < 1.0
        assert curve[64]["efficiency"] <= curve[8]["efficiency"]
        assert curve[8]["exchange_s"] > 0.0

    def test_bigger_local_domain_scales_better(self):
        s = dsl.by_name("13pt").build()
        plat = gpu.platform("A100", "CUDA")
        small = comm.weak_scaling(s, plat, (64, 64, 64), rank_counts=(1, 8))
        big = comm.weak_scaling(s, plat, (256, 256, 256), rank_counts=(1, 8))
        # Surface-to-volume: the larger local block hides communication
        # better.
        assert big[8]["efficiency"] > small[8]["efficiency"]
