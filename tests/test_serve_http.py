"""HTTP layer e2e: REST contract, byte-identity, 429 backpressure."""

import json
import urllib.error
import urllib.request

import pytest

from repro import harness, obs
from repro.errors import ServeError
from repro.harness.experiments import ExperimentConfig
from repro.serve import (
    BackpressureError,
    JobOptions,
    Orchestrator,
    ResultStore,
    ServeClient,
    start_server,
)

SMALL_DOC = {
    "stencils": ["7pt"], "variants": ["array"], "domain": [64, 64, 64]
}
SMALL = ExperimentConfig(stencils=("7pt",), variants=("array",), domain=(64, 64, 64))


@pytest.fixture
def registry():
    prev = obs.get_registry()
    reg = obs.set_registry(obs.MetricsRegistry())
    yield reg
    obs.set_registry(prev)


@pytest.fixture
def service(registry):
    """A live server on a free port, torn down after the test."""
    orchestrator = Orchestrator(
        ResultStore(), queue_limit=4, workers=1, batch_window=4
    )
    server, thread = start_server(0, orchestrator)
    server.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}", timeout_s=30.0)
    yield client, orchestrator
    server.shutdown_all()


class TestEndToEnd:
    def test_submit_poll_fetch(self, service):
        client, _ = service
        job = client.submit(SMALL_DOC)
        assert job["state"] in ("queued", "running", "done")
        final = client.wait(job["job_id"])
        assert final["state"] == "done"
        assert final["complete"] is True
        doc = client.result(job["job_id"])
        assert len(doc["results"]) == 5  # 1 stencil x 5 platforms x 1 variant

    def test_result_bytes_identical_to_dump_study(self, service, tmp_path):
        client, _ = service
        doc = client.run(SMALL_DOC)
        job = client.submit(SMALL_DOC)  # dedup: same stored study
        body = client.result_bytes(job["job_id"])
        path = tmp_path / "direct.json"
        harness.dump_study(harness.run_study(SMALL), str(path))
        assert body == path.read_bytes()
        assert doc == json.loads(body)

    def test_duplicate_submission_is_served_from_store(self, service, registry):
        client, _ = service
        client.run(SMALL_DOC)
        study_points_before = registry.counter("study.points").value
        job = client.submit(SMALL_DOC)
        assert job["dedup"] is True and job["state"] == "done"
        # Zero simulation happened for the duplicate.
        assert registry.counter("study.points").value == study_points_before
        assert registry.counter("serve.dedup_hits").value == 1

    def test_default_config_is_the_paper_study(self, service):
        client, _ = service
        job = client.submit()  # empty body
        final = client.wait(job["job_id"])
        assert final["points"] == 90  # 6 stencils x 5 platforms x 3 variants

    def test_two_concurrent_tenants_share_the_pool(self, service):
        client, _ = service
        a = client.submit(SMALL_DOC)
        b = client.submit(
            {"stencils": ["13pt"], "variants": ["array"],
             "domain": [64, 64, 64]}
        )
        assert a["job_id"] != b["job_id"]
        assert client.wait(a["job_id"])["state"] == "done"
        assert client.wait(b["job_id"])["state"] == "done"

    def test_per_job_chaos_options_degrade_gracefully(self, service):
        client, _ = service
        doc = client.run(
            SMALL_DOC, {"inject_faults": 0, "retries": 0},
        )
        # Degraded but served: failed points render as explicit records.
        assert doc["failed"] and len(doc["results"]) < 5


class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, service):
        client, orchestrator = service
        # One sleepy job occupies the single worker; 4 more fill the
        # queue (limit=4); the next submission must bounce.
        sleepy = {"sleep_s": 2.0}
        docs = [
            {"stencils": ["7pt"], "variants": ["array"], "domain": [64 + i, 64, 64]}
            for i in range(6)
        ]
        rejected = None
        for i, doc in enumerate(docs):
            try:
                client.submit(doc, sleepy)
            except BackpressureError as exc:
                rejected = exc
                break
        assert rejected is not None, "queue never filled"
        assert rejected.retry_after_s >= 1.0
        # The raw response carries the header, not just the exception.
        req = urllib.request.Request(
            f"{client.base_url}/studies", method="POST",
            data=json.dumps({"config": docs[-1], "options": sleepy}).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 429
        assert float(err.value.headers["Retry-After"]) >= 1.0


class TestErrorContract:
    def test_bad_config_is_400(self, service):
        client, _ = service
        with pytest.raises(ServeError, match="400"):
            client.submit({"stencils": ["1000000pt"]})

    def test_unknown_option_is_400(self, service):
        client, _ = service
        with pytest.raises(ServeError, match="400"):
            client.submit(SMALL_DOC, {"priority": "high"})

    def test_malformed_json_is_400(self, service):
        client, _ = service
        req = urllib.request.Request(
            f"{client.base_url}/studies", method="POST", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 400

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServeError, match="404"):
            client.status("j99999")

    def test_unknown_endpoint_is_404(self, service):
        client, _ = service
        with pytest.raises(ServeError, match="404"):
            client._json("GET", "/nope")

    def test_result_before_done_is_409(self, service):
        client, _ = service
        job = client.submit(SMALL_DOC, {"sleep_s": 3.0})
        with pytest.raises(ServeError, match="409"):
            client.result_bytes(job["job_id"])

    def test_cancel_running_or_done_is_409(self, service):
        client, _ = service
        job = client.submit(SMALL_DOC)
        client.wait(job["job_id"])
        with pytest.raises(ServeError, match="409"):
            client.cancel(job["job_id"])


class TestControlPlane:
    def test_cancel_queued_job(self, service):
        client, orchestrator = service
        # Occupy the worker so the next job stays queued.
        client.submit(SMALL_DOC, {"sleep_s": 2.0})
        victim = client.submit(
            {"stencils": ["25pt"], "variants": ["array"],
             "domain": [64, 64, 64]},
            {"sleep_s": 2.0},
        )
        doc = client.cancel(victim["job_id"])
        assert doc["state"] == "cancelled"
        assert client.status(victim["job_id"])["state"] == "cancelled"

    def test_health_and_jobs_listing(self, service):
        client, _ = service
        health = client.health()
        assert health["status"] == "ok"
        client.run(SMALL_DOC)
        listing = client.jobs()
        assert any(j["state"] == "done" for j in listing["jobs"])

    def test_metricz_exposes_serve_counters(self, service):
        client, _ = service
        client.run(SMALL_DOC)
        metrics = client.metrics()
        assert metrics["serve.requests"] >= 1
        assert metrics["serve.jobs.done"] >= 1

    def test_client_run_happy_path_and_unreachable_server(self, service):
        client, _ = service
        doc = client.run(SMALL_DOC)
        assert len(doc["results"]) == 5
        dead = ServeClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServeError, match="cannot reach"):
            dead.health()


class TestWaitBackoff:
    """Unit-level: ``wait`` honours server poll hints without a server."""

    def make_client(self, docs):
        """A client whose ``status`` pops canned docs instead of GETting."""
        client = ServeClient("http://127.0.0.1:9")
        feed = list(docs)
        client.status = lambda job_id: feed.pop(0)  # type: ignore[method-assign]
        return client

    def record_sleeps(self, monkeypatch):
        from repro.serve import client as client_mod

        sleeps = []
        monkeypatch.setattr(
            client_mod.time, "sleep", lambda s: sleeps.append(s)
        )
        return sleeps

    def test_server_hint_sets_the_cadence(self, monkeypatch):
        sleeps = self.record_sleeps(monkeypatch)
        client = self.make_client([
            {"state": "queued", "poll_after_s": 0.4},
            {"state": "running", "poll_after_s": 0.2},
            {"state": "done"},
        ])
        assert client.wait("j00001")["state"] == "done"
        assert sleeps == [0.4, 0.2]

    def test_hint_is_clamped_to_the_poll_bounds(self, monkeypatch):
        sleeps = self.record_sleeps(monkeypatch)
        client = self.make_client([
            {"state": "queued", "poll_after_s": 30.0},   # server estimate
            {"state": "queued", "poll_after_s": 0.0001},  # absurdly eager
            {"state": "done"},
        ])
        client.wait("j00001")
        assert sleeps == [1.0, 0.05]  # [_POLL_MAX_S, _POLL_MIN_S]

    def test_no_hint_falls_back_to_doubling(self, monkeypatch):
        sleeps = self.record_sleeps(monkeypatch)
        client = self.make_client(
            [{"state": "running"}] * 6 + [{"state": "done"}]
        )
        client.wait("j00001")
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]

    def test_max_polls_exhaustion_raises(self, monkeypatch):
        self.record_sleeps(monkeypatch)
        client = self.make_client([{"state": "running"}] * 10)
        with pytest.raises(ServeError, match="not terminal after 5"):
            client.wait("j00001", max_polls=5)
