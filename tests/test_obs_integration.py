"""Integration tests: instrumentation through simulate / study / CLI."""

import json

import pytest

from repro import cli, harness, obs
from repro.dsl.shapes import by_name
from repro.gpu.progmodel import platform
from repro.gpu.simulator import simulate

SMALL = harness.ExperimentConfig(
    stencils=("7pt", "13pt"), domain=(128, 128, 128)
)


@pytest.fixture
def tracer():
    """Fresh enabled global tracer + registry, restored afterwards."""
    prev_t, prev_r = obs.get_tracer(), obs.get_registry()
    t = obs.set_tracer(obs.Tracer(enabled=True))
    obs.set_registry(obs.MetricsRegistry())
    yield t
    obs.set_tracer(prev_t)
    obs.set_registry(prev_r)


class TestSimulateSpans:
    def test_pipeline_stage_spans(self, tracer):
        simulate(by_name("13pt").build(), "bricks_codegen",
                 platform("A100", "CUDA"), domain=(128, 128, 128),
                 stencil_name="13pt")
        (root,) = tracer.roots()
        assert root.name == "simulate"
        assert root.attrs["stencil"] == "13pt"
        assert root.attrs["platform"] == "A100-CUDA"
        assert root.attrs["variant"] == "bricks_codegen"
        stages = [c.name for c in root.children]
        assert stages == ["codegen", "cost", "traffic", "timing"]
        # The deeper library spans nest inside their stage spans.
        assert root.find("codegen.generate")
        assert root.find("traffic.estimate")

    def test_simulate_metrics(self, tracer):
        simulate(by_name("7pt").build(), "array",
                 platform("MI250X", "HIP"), domain=(128, 128, 128))
        reg = obs.get_registry()
        assert reg.counter("simulate.calls").value == 1
        assert reg.counter("simulate.tiles").value > 0
        assert reg.counter("codegen.vector_ops").value > 0

    def test_untraced_simulate_records_no_spans(self):
        prev = obs.get_tracer()
        t = obs.disable_tracing()
        try:
            simulate(by_name("7pt").build(), "array",
                     platform("A100", "CUDA"), domain=(128, 128, 128))
            assert t.span_count() == 0
        finally:
            obs.set_tracer(prev)


class TestStudySpans:
    def test_run_study_span_tree(self, tracer):
        harness.run_study(SMALL)
        (root,) = tracer.roots()
        assert root.name == "run_study"
        points = root.find("study.point")
        # 2 stencils x 5 platforms x 3 variants
        assert len(points) == 30
        keys = {
            (p.attrs["stencil"], p.attrs["platform"], p.attrs["variant"])
            for p in points
        }
        assert len(keys) == 30
        for p in points:
            (sim,) = p.children
            assert sim.name == "simulate"
            assert {c.name for c in sim.children} == {
                "codegen", "cost", "traffic", "timing"
            }

    def test_cached_study_hit_and_miss(self, tracer):
        harness.clear_study_cache()
        try:
            harness.cached_study(SMALL)
            harness.cached_study(SMALL)
        finally:
            harness.clear_study_cache()
        reg = obs.get_registry()
        assert reg.counter("study_cache.misses").value == 1
        assert reg.counter("study_cache.hits").value == 1
        spans = tracer.find("cached_study")
        assert [s.attrs["cache"] for s in spans] == ["miss", "hit"]
        # The hit renders from memo: no second sweep was simulated.
        assert len(tracer.find("run_study")) == 1


class TestCacheSimMetrics:
    def test_access_trace_publishes_counters(self, tracer):
        from repro.gpu.cache import CacheSim

        sim = CacheSim(capacity_bytes=1024, line_bytes=128, associativity=2)
        sim.access_trace([0, 1, 0, 2, 1])
        reg = obs.get_registry()
        assert reg.counter("cache.accesses").value == 5
        assert reg.counter("cache.hits").value == 2
        assert reg.counter("cache.misses").value == 3


class TestCli:
    def test_study_trace_jsonl(self, capsys, tmp_path):
        harness.clear_study_cache()
        out_path = tmp_path / "out.jsonl"
        try:
            rc = cli.main(["study", "--trace", str(out_path)])
        finally:
            harness.clear_study_cache()
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace (jsonl) written" in out
        records = [
            json.loads(line)
            for line in out_path.read_text().strip().split("\n")
        ]
        names = [r["name"] for r in records]
        assert names.count("study.point") == 90
        assert names.count("simulate") == 90
        for stage in ("codegen", "cost", "traffic", "timing"):
            assert names.count(stage) == 90

    def test_study_trace_chrome_loadable(self, capsys, tmp_path):
        harness.clear_study_cache()
        out_path = tmp_path / "trace.json"
        try:
            rc = cli.main(
                ["study", "--trace", str(out_path), "--trace-format", "chrome"]
            )
        finally:
            harness.clear_study_cache()
        assert rc == 0
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        points = [e for e in events if e["name"] == "study.point"]
        assert len(points) == 90
        assert {
            (e["args"]["stencil"], e["args"]["platform"], e["args"]["variant"])
            for e in points
        } == {
            (s, p, v)
            for s in harness.STENCIL_NAMES
            for p in (pl.name for pl in harness.ExperimentConfig().platforms())
            for v in ("array", "array_codegen", "bricks_codegen")
        }

    def test_obs_subcommand(self, capsys):
        harness.clear_study_cache()  # a cold sweep puts run_study in the tree
        try:
            rc = cli.main(["obs"])
        finally:
            harness.clear_study_cache()
        out = capsys.readouterr().out
        assert rc == 0
        assert "observability report: 90 kernel runs" in out
        assert "cached_study" in out and "run_study" in out
        assert "metrics:" in out
        assert "study_cache.hits" in out and "study_cache.misses" in out
        assert "simulate.calls" in out

    def test_table_and_figure_share_cached_study(self, capsys):
        # Same process: the second render must hit the study memo.
        prev_r = obs.get_registry()
        reg = obs.set_registry(obs.MetricsRegistry())
        harness.clear_study_cache()
        try:
            assert cli.main(["table", "3"]) == 0
            assert cli.main(["figure", "4"]) == 0
        finally:
            obs.set_registry(prev_r)
            harness.clear_study_cache()
        capsys.readouterr()
        assert reg.counter("study_cache.misses").value == 1
        assert reg.counter("study_cache.hits").value == 1


class TestOverhead:
    def test_disabled_tracing_overhead_is_small(self):
        """Span call sites must be near-free when tracing is off."""
        import time

        from repro.obs.trace import Tracer

        prev = obs.get_tracer()
        obs.set_tracer(Tracer(enabled=False))
        try:
            t0 = time.perf_counter()
            for _ in range(100_000):
                with obs.span("hot", a=1):
                    pass
            elapsed = time.perf_counter() - t0
        finally:
            obs.set_tracer(prev)
        # 100k disabled spans in well under a second (typically ~50 ms);
        # a run_study issues ~700, so the <5% budget is comfortable.
        assert elapsed < 2.0
