"""Structural tests for the CUDA/HIP/SYCL source emitters."""

import pytest

from repro.bricks import BrickDims
from repro.codegen import CodegenOptions, generate
from repro.codegen.emitters import MODELS, emit
from repro.codegen.vector_ir import Store
from repro.dsl import by_name, star
from repro.errors import CodegenError


def make_program(name="13pt", strategy="scatter", bi=16, vl=16):
    s = by_name(name).build()
    return generate(s, BrickDims((bi, 4, 4)), CodegenOptions(vl, strategy))


class TestModelDispatch:
    def test_models(self):
        assert MODELS == ("CUDA", "HIP", "SYCL")

    def test_unknown_model(self):
        with pytest.raises(CodegenError):
            emit(make_program(), "OpenCL")

    def test_unknown_layout(self):
        with pytest.raises(CodegenError):
            emit(make_program(), "CUDA", layout="soa")


class TestShuffleIntrinsics:
    """Each model must use its own shuffle spelling (paper Section 3)."""

    def test_cuda_uses_sync_shuffles(self):
        src = emit(make_program(), "CUDA")
        assert "__shfl_down_sync(0xffffffff" in src
        assert "__shfl_up_sync(0xffffffff" in src
        assert "__shfl_down(" not in src.replace("__shfl_down_sync(", "")

    def test_hip_uses_legacy_shuffles(self):
        src = emit(make_program(), "HIP")
        assert "__shfl_down(" in src and "__shfl_up(" in src
        assert "_sync" not in src

    def test_sycl_uses_subgroup_shuffles(self):
        src = emit(make_program(), "SYCL")
        assert "sub_group_shuffle_down(" in src
        assert "sub_group_shuffle_up(" in src

    def test_naive_programs_have_no_shuffles(self):
        src = emit(make_program(strategy="naive"), "CUDA")
        assert "__shfl" not in src


class TestKernelStructure:
    def test_cuda_brick_signature(self):
        src = emit(make_program(), "CUDA", layout="brick")
        assert "__global__ void" in src
        assert "Brick<Dim<4,4,16>, Dim<16,1,1>>" in src
        assert "unsigned b = grid[tk][tj][ti];" in src
        assert "blockIdx.z" in src

    def test_hip_block_indices(self):
        src = emit(make_program(), "HIP")
        assert "hipBlockIdx_z" in src and "hipThreadIdx_x" in src

    def test_sycl_boilerplate(self):
        src = emit(make_program(), "SYCL")
        assert "parallel_for" in src
        assert "nd_item<3>" in src
        assert "reqd_sub_group_size(16)" in src
        assert "syclBrick" in src

    def test_array_layout_indexing(self):
        src = emit(make_program(), "CUDA", layout="array")
        assert "in_g[IDX(" in src and "out_g[IDX(" in src
        assert "Brick<" not in src

    def test_store_count_matches_program(self):
        prog = make_program()
        stores = sum(isinstance(op, Store) for op in prog.ops)
        src = emit(prog, "CUDA")
        assert src.count("bOut[b][") == stores

    def test_coefficient_symbols_appear(self):
        src = emit(make_program("7pt"), "CUDA")
        assert "B0" in src and "B1" in src

    def test_fma_used(self):
        src = emit(make_program(), "HIP")
        assert "fma(" in src

    def test_custom_kernel_name(self):
        src = emit(make_program(), "CUDA", kernel_name="my_kernel")
        assert "void my_kernel(" in src

    def test_multi_vector_program_emits(self):
        prog = make_program(bi=32, vl=16)
        for model in MODELS:
            src = emit(prog, model)
            assert "16 + lane" in src  # second vector of each row

    def test_negative_row_indices_rendered(self):
        # Scatter programs read halo rows at negative k/j.
        src = emit(make_program("13pt", "scatter"), "CUDA")
        assert "bIn[b][-2][" in src

    def test_halo_loads_annotated(self):
        src = emit(make_program("13pt", "scatter"), "CUDA")
        assert "// halo" in src


class TestDeterminism:
    def test_emission_is_deterministic(self):
        a = emit(make_program(), "SYCL")
        b = emit(make_program(), "SYCL")
        assert a == b

    def test_star_r1_gather_snapshot_fragment(self):
        prog = generate(
            star(1), BrickDims((8, 4, 4)), CodegenOptions(8, "gather")
        )
        src = emit(prog, "CUDA", layout="brick")
        # The centre row must be loaded exactly once with reuse on.
        assert src.count("bIn[b][0][0][lane]") == 1
