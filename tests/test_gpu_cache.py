"""Unit and property tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpu import CacheSim, dense_row_lines


def small_cache(lines=8, assoc=2, **kw):
    return CacheSim(capacity_bytes=lines * 128, line_bytes=128,
                    associativity=assoc, **kw)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_capacity_eviction(self):
        # Fully-associative, 4 lines: the 5th distinct line evicts the LRU.
        c = CacheSim(capacity_bytes=4 * 128, associativity=0)
        for addr in range(5):
            c.access(addr)
        assert c.access(0) is False  # evicted
        assert c.stats.evictions >= 1

    def test_lru_order(self):
        c = CacheSim(capacity_bytes=2 * 128, associativity=0)
        c.access(0)
        c.access(1)
        c.access(0)  # 1 is now LRU
        c.access(2)  # evicts 1
        assert c.access(0) is True
        assert c.access(1) is False

    def test_set_conflicts(self):
        # 2-way, 4 sets: addresses 0, 4, 8 map to set 0 -> third conflicts.
        c = small_cache(lines=8, assoc=2)
        c.access(0)
        c.access(4)
        c.access(8)
        assert c.stats.evictions == 1

    def test_writebacks_on_dirty_eviction(self):
        c = CacheSim(capacity_bytes=1 * 128, associativity=0)
        c.access(0, write=True)
        c.access(1)
        assert c.stats.writebacks == 1

    def test_no_write_allocate(self):
        c = CacheSim(capacity_bytes=4 * 128, associativity=0, write_allocate=False)
        c.access(0, write=True)
        assert c.resident_lines() == 0
        assert c.stats.writebacks == 1
        assert c.miss_bytes == 0  # write miss did not fill

    def test_flush(self):
        c = small_cache()
        c.access(0, write=True)
        c.access(1)
        dirty = c.flush()
        assert dirty == 1
        assert c.resident_lines() == 0

    def test_invalid_configs(self):
        with pytest.raises(SimulationError):
            CacheSim(capacity_bytes=0)
        with pytest.raises(SimulationError):
            CacheSim(capacity_bytes=64, line_bytes=128)
        with pytest.raises(SimulationError):
            CacheSim(capacity_bytes=3 * 128, associativity=2)


class TestTraces:
    def test_streaming_trace_all_miss(self):
        c = small_cache()
        misses = c.access_trace(range(100))
        assert misses == 100

    def test_repeated_trace_within_capacity(self):
        c = CacheSim(capacity_bytes=16 * 128, associativity=0)
        c.access_trace(range(16))
        assert c.access_trace(range(16)) == 0

    def test_access_array(self):
        c = small_cache()
        misses = c.access_array(np.array([0, 1, 0, 1]))
        assert misses == 2

    def test_dense_row_lines(self):
        # 16 doubles starting at element 0 -> exactly one 128 B line.
        assert list(dense_row_lines(0, 16)) == [0]
        # Crossing a boundary: elements 14..29 -> lines 0 and 1.
        assert list(dense_row_lines(14, 16)) == [0, 1]


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 63), min_size=1, max_size=300),
        lines=st.sampled_from([4, 8, 16]),
        assoc=st.sampled_from([0, 2, 4]),
    )
    def test_hits_plus_misses_and_compulsory_bound(self, addrs, lines, assoc):
        c = CacheSim(capacity_bytes=lines * 128, associativity=assoc)
        for a in addrs:
            c.access(a)
        st_ = c.stats
        assert st_.hits + st_.misses == st_.accesses == len(addrs)
        # Misses are at least the number of distinct lines (compulsory)
        # and at most the total accesses.
        assert len(set(addrs)) <= st_.misses <= len(addrs)
        # Residency never exceeds capacity.
        assert c.resident_lines() <= lines

    @settings(max_examples=20, deadline=None)
    @given(addrs=st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_bigger_cache_never_worse(self, addrs):
        small = CacheSim(capacity_bytes=4 * 128, associativity=0)
        big = CacheSim(capacity_bytes=64 * 128, associativity=0)
        for a in addrs:
            small.access(a)
            big.access(a)
        # LRU is a stack algorithm: inclusion property guarantees this.
        assert big.stats.misses <= small.stats.misses
