"""Unit tests for symbolic indices."""

import pytest

from repro.dsl import Index
from repro.dsl.indices import ShiftedIndex, as_shift
from repro.errors import DSLError


class TestIndex:
    def test_dims(self):
        assert Index(0).dim == 0
        assert Index(2).dim == 2

    def test_negative_dim_rejected(self):
        with pytest.raises(DSLError):
            Index(-1)

    def test_add_produces_shift(self):
        s = Index(1) + 3
        assert isinstance(s, ShiftedIndex)
        assert (s.dim, s.offset) == (1, 3)

    def test_sub_produces_shift(self):
        s = Index(2) - 2
        assert (s.dim, s.offset) == (2, -2)

    def test_radd(self):
        s = 4 + Index(0)
        assert (s.dim, s.offset) == (0, 4)

    def test_chained_shifts(self):
        s = Index(0) + 1 + 2 - 5
        assert s.offset == -2

    def test_non_int_shift_rejected(self):
        with pytest.raises(DSLError):
            Index(0) + 1.5
        with pytest.raises(DSLError):
            (Index(0) + 1) - 0.5

    def test_equality_and_hash(self):
        assert Index(0) == Index(0)
        assert Index(0) != Index(1)
        assert len({Index(0) + 1, Index(0) + 1, Index(0) + 2}) == 2


class TestAsShift:
    def test_index_normalised(self):
        s = as_shift(Index(1))
        assert (s.dim, s.offset) == (1, 0)

    def test_shift_passthrough(self):
        s = as_shift(Index(1) + 2)
        assert (s.dim, s.offset) == (1, 2)

    def test_garbage_rejected(self):
        with pytest.raises(DSLError):
            as_shift("i")
