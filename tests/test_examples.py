"""Smoke tests: every example script runs clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def run_example(name: str) -> subprocess.CompletedProcess:
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    return subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_present():
    # The deliverable: a quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path, monkeypatch):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # says something


def test_quickstart_output():
    result = run_example("quickstart.py")
    assert "13pt" in result.stdout
    assert "max |err|" in result.stdout


def test_heat_equation_validates():
    result = run_example("heat_equation_3d.py")
    assert "analytic decay" in result.stdout
    assert "✓" in result.stdout
