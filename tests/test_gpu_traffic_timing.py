"""Tests for the traffic model, timing model, and their paper-shaped outputs."""

import pytest

from repro.dsl import by_name, compulsory_bytes, star
from repro.errors import SimulationError
from repro.gpu import (
    layer_condition_extra,
    occupancy_factor,
    platform,
    simulate,
)
from repro.gpu.simulator import tile_for


def sim(name="13pt", variant="bricks_codegen", plat=("A100", "CUDA"), **kw):
    case = by_name(name)
    return simulate(case.build(), variant, platform(*plat), stencil_name=name, **kw)


class TestTraffic:
    def test_writes_are_exact(self):
        r = sim()
        assert r.traffic.hbm_write_bytes == 512**3 * 8

    def test_reads_at_least_compulsory(self):
        for name in ("7pt", "125pt"):
            for variant in ("array", "array_codegen", "bricks_codegen"):
                r = sim(name, variant)
                assert r.traffic.hbm_read_bytes >= (512 + 2 * r.cost.vl * 0) * 0 + 512**3 * 8

    def test_total_at_least_lower_bound(self):
        bound = compulsory_bytes((512, 512, 512))
        for variant in ("array", "array_codegen", "bricks_codegen"):
            r = sim(variant=variant)
            assert r.traffic.hbm_total_bytes >= bound

    def test_bricks_moves_least(self):
        arr = sim(variant="array_codegen")
        bricks = sim(variant="bricks_codegen")
        assert bricks.traffic.hbm_total_bytes < arr.traffic.hbm_total_bytes

    def test_bricks_near_lower_bound_on_a100(self):
        # Figure 5 right: bricks close to 2.15 GB.
        bound = compulsory_bytes((512, 512, 512))
        r = sim(variant="bricks_codegen")
        assert r.traffic.hbm_total_bytes < 1.25 * bound

    def test_array_codegen_a100_near_4gb(self):
        # Figure 5 right: array codegen moves closer to 4 GB.
        r = sim(variant="array_codegen")
        assert 3.5e9 < r.traffic.hbm_total_bytes < 4.5e9

    def test_hip_array_codegen_anomaly(self):
        # Figure 6 right: HIP array codegen moves more than 10 GB.
        r = sim(variant="array_codegen", plat=("MI250X", "HIP"))
        assert r.traffic.hbm_total_bytes > 10e9

    def test_domain_must_be_tile_multiple(self):
        with pytest.raises(SimulationError):
            sim(domain=(100, 100, 100))

    def test_layer_condition_binds_only_small_caches(self):
        s = star(4)
        # A100's 40 MB holds the 8 shared planes of a 512^2 slab; an 8 MB
        # L2 does not.
        assert layer_condition_extra(s, "array", 4, (512, 512, 512), 40 * 2**20) == 0.0
        assert layer_condition_extra(s, "array", 4, (512, 512, 512), 8 * 2**20) > 0.0

    def test_layer_condition_brick_needs_half_the_planes(self):
        s = star(4)
        cap = 10 * 2**20
        arr = layer_condition_extra(s, "array", 4, (512, 512, 512), cap)
        brick = layer_condition_extra(s, "brick", 4, (512, 512, 512), cap)
        assert brick < arr

    def test_layer_condition_reread_proportional_to_shared_planes(self):
        # Regression: the re-read volume must scale with the planes a
        # layout actually shares (2r array, r brick), not a hardcoded
        # 2r for both.  In the deep-miss limit (zero effective LLC, miss
        # fraction 1 for both layouts) brick re-reads exactly half.
        for radius in (1, 2, 4):
            s = star(radius)
            arr = layer_condition_extra(s, "array", 4, (512, 512, 512), 0.0)
            brick = layer_condition_extra(s, "brick", 4, (512, 512, 512), 0.0)
            assert arr > 0
            assert brick == pytest.approx(arr / 2)
            # Closed form: miss_fraction 1 -> shared/tile_k of the domain.
            assert arr == pytest.approx((2 * radius / 4) * 512**3 * 8)

    def test_layer_condition_brick_threshold_sits_at_r_planes(self):
        # A cache holding the r brick boundary planes but not the 2r
        # array planes separates the layouts at the threshold too.
        s = star(2)
        ws_brick = 512 * 512 * 2 * 8  # nj * ni * r * FP64
        cap = ws_brick * 1.5
        assert layer_condition_extra(s, "brick", 4, (512, 512, 512), cap) == 0.0
        assert layer_condition_extra(s, "array", 4, (512, 512, 512), cap) > 0.0

    def test_l1_gap_naive_vs_codegen(self):
        # Figure 4: array moves 10x or more L1 bytes vs codegen variants.
        naive = sim("27pt", "array")
        codegen = sim("27pt", "array_codegen")
        assert naive.traffic.l1_bytes / codegen.traffic.l1_bytes >= 5.0
        naive125 = sim("125pt", "array")
        codegen125 = sim("125pt", "array_codegen")
        assert naive125.traffic.l1_bytes / codegen125.traffic.l1_bytes >= 10.0

    def test_scalarized_l1_blowup(self):
        coalesced = sim("13pt", "array", plat=("A100", "CUDA"))
        scalar = sim("13pt", "array", plat=("A100", "SYCL"))
        assert scalar.traffic.l1_bytes > 2.0 * coalesced.traffic.l1_bytes


class TestTiming:
    def test_unknown_vendor_is_a_simulation_error(self):
        from repro.gpu.timing import SHUFFLE_CYCLES, shuffle_cycles_for

        with pytest.raises(SimulationError) as exc:
            shuffle_cycles_for("TransmetaGPU")
        # The error names the offender and the supported vendors.
        assert "TransmetaGPU" in str(exc.value)
        for vendor in SHUFFLE_CYCLES:
            assert vendor in str(exc.value)
            assert shuffle_cycles_for(vendor) == SHUFFLE_CYCLES[vendor]

    def test_occupancy_factor(self):
        assert occupancy_factor(10, 64) == 1.0
        assert occupancy_factor(64, 64) == 1.0
        assert occupancy_factor(256, 64) == pytest.approx(0.5)

    def test_breakdown_total_at_least_max_term(self):
        r = sim("125pt", "bricks_codegen")
        t = r.timing
        assert t.total >= max(t.t_hbm, t.t_l1, t.t_fp)
        assert t.total >= t.t_hbm + t.t_shuffle + t.t_issue

    def test_memory_bound_small_stencils(self):
        assert sim("7pt").timing.bottleneck == "hbm"

    def test_fp_bound_125pt_on_a100(self):
        # Table 3's 125pt row: high-AI stencils leave the bandwidth roof.
        r = sim("125pt", "bricks_codegen")
        assert r.timing.t_fp > r.timing.t_hbm

    def test_sycl_naive_issue_dominated(self):
        r = sim("125pt", "array", plat=("A100", "SYCL"))
        assert r.timing.bottleneck == "issue"

    def test_time_positive_and_finite(self):
        for name in ("7pt", "125pt"):
            for variant in ("array", "array_codegen", "bricks_codegen"):
                r = sim(name, variant)
                assert 0 < r.time_s < 1.0  # under a second per sweep


class TestPaperHeadlines:
    """The qualitative claims of Section 5.1, as assertions."""

    @pytest.mark.parametrize(
        "plat", [("A100", "CUDA"), ("A100", "SYCL"), ("MI250X", "HIP"),
                 ("MI250X", "SYCL"), ("PVC", "SYCL")]
    )
    def test_bricks_codegen_fastest_everywhere(self, plat):
        for name in ("7pt", "13pt", "27pt", "125pt"):
            times = {
                v: sim(name, v, plat).time_s
                for v in ("array", "array_codegen", "bricks_codegen")
            }
            assert times["bricks_codegen"] <= times["array"]
            assert times["bricks_codegen"] <= times["array_codegen"] * 1.001

    def test_bricks_ai_beats_array_codegen_everywhere(self):
        # Bricks' layout always beats the array layout under the same
        # code generator (the paper's controlled comparison).
        for plat in (("A100", "CUDA"), ("A100", "SYCL"), ("MI250X", "HIP"),
                     ("MI250X", "SYCL"), ("PVC", "SYCL")):
            for name in ("7pt", "125pt"):
                bricks = sim(name, "bricks_codegen", plat).arithmetic_intensity
                arr = sim(name, "array_codegen", plat).arithmetic_intensity
                assert bricks > arr

    def test_bricks_highest_ai_on_a100_and_pvc(self):
        # Paper Section 5.1: bricks codegen attains the highest AI across
        # all kernels on the A100 and PVC.
        for plat in (("A100", "CUDA"), ("PVC", "SYCL")):
            for name in ("7pt", "125pt"):
                ais = {
                    v: sim(name, v, plat).arithmetic_intensity
                    for v in ("array", "array_codegen", "bricks_codegen")
                }
                assert ais["bricks_codegen"] == max(ais.values())

    def test_sycl_array_collapse_on_a100(self):
        # 13x-26x codegen improvement under SYCL on A100.
        naive = sim("125pt", "array", ("A100", "SYCL"))
        bricks = sim("125pt", "bricks_codegen", ("A100", "SYCL"))
        assert naive.time_s / bricks.time_s > 15.0

    def test_cuda_array_gap_is_modest(self):
        # On CUDA the same gap is small (<= ~2.5x).
        naive = sim("13pt", "array", ("A100", "CUDA"))
        bricks = sim("13pt", "bricks_codegen", ("A100", "CUDA"))
        assert naive.time_s / bricks.time_s < 2.5

    def test_custom_tile_override(self):
        plat = platform("A100", "CUDA")
        default = tile_for(plat)
        assert default.dims == (32, 4, 4)
        r = simulate(by_name("7pt").build(), "bricks_codegen", plat,
                     domain=(64, 64, 64))
        assert r.cost.vl == 32
