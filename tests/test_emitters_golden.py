"""Golden-file regression tests for all six emitter back ends.

Any change to code generation or emission that alters the produced
source shows up as a diff against the checked-in snapshots (regenerate
deliberately with ``python tests/test_emitters_golden.py``).
"""

import pathlib

import pytest

from repro import dsl
from repro.bricks import BrickDims
from repro.codegen import CodegenOptions, generate
from repro.codegen.emitters import emit

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: (model, vector length) pairs snapshotted.
CASES = [
    ("CUDA", 8),
    ("HIP", 8),
    ("SYCL", 8),
    ("AVX512", 8),
    ("SVE", 8),
    ("AVX2", 4),
]


def generate_source(model: str, vl: int) -> str:
    prog = generate(
        dsl.star(1), BrickDims((vl, 4, 4)), CodegenOptions(vl, "gather")
    )
    return emit(prog, model, layout="brick")


@pytest.mark.parametrize("model,vl", CASES, ids=lambda v: str(v))
def test_matches_golden(model, vl):
    expected = (GOLDEN_DIR / f"star1_{model.lower()}_brick.txt").read_text()
    assert generate_source(model, vl) == expected


def test_golden_files_nontrivial():
    for model, _ in CASES:
        text = (GOLDEN_DIR / f"star1_{model.lower()}_brick.txt").read_text()
        assert len(text.splitlines()) > 30


if __name__ == "__main__":  # regenerate the snapshots
    for model, vl in CASES:
        path = GOLDEN_DIR / f"star1_{model.lower()}_brick.txt"
        path.write_text(generate_source(model, vl))
        print(f"wrote {path}")
