"""Fault injection, retry policy, and graceful sweep degradation.

The contract under test: a seeded :class:`FaultPlan` produces the same
fault sequence everywhere, transient faults are retried away (so a
faulted sweep is bit-identical to a fault-free one), deterministic
errors are *not* retried, and points that fail permanently degrade into
structured :class:`FailedPoint` entries that the renderers footnote
instead of crashing on.
"""

import time

import pytest

from repro import cli, harness, obs
from repro.errors import (
    ExecutionError,
    MetricError,
    SimulationError,
    TaskTimeoutError,
    TransientError,
)
from repro.exec import parallel_map
from repro.harness.tables import table3
from repro.resilience import (
    CorruptPayload,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TaskFailure,
    run_with_policy,
)


@pytest.fixture
def registry():
    prev = obs.get_registry()
    reg = obs.set_registry(obs.MetricsRegistry())
    yield reg
    obs.set_registry(prev)


def _count(registry, name):
    try:
        return registry.get(name).value
    except Exception:
        return 0


# --- module-level callables so the process pool can pickle them ----------


def _double(x):
    return 2 * x


def _sleepy(x):
    time.sleep(5.0)
    return x


def _model_error(x):
    raise SimulationError("deterministic model error")


def _transient_on_three(x):
    if x == 3:
        raise TransientError("three is cursed")
    return 2 * x


class _Flaky:
    """Fails the first ``failures`` attempts of every item, then works."""

    def __init__(self, failures):
        self.failures = failures
        self._seen = {}

    def __call__(self, x):
        n = self._seen.get(x, 0)
        self._seen[x] = n + 1
        if n < self.failures:
            raise TransientError(f"flaky {x} attempt {n + 1}")
        return 10 * x


class _CorruptOnce:
    """Returns a poison payload on the first attempt per item."""

    def __init__(self):
        self._seen = set()

    def __call__(self, x):
        if x not in self._seen:
            self._seen.add(x)
            return CorruptPayload()
        return 10 * x


def _is_int(value):
    return isinstance(value, int)


# --- FaultPlan -----------------------------------------------------------

KEYS = tuple((s, p) for s in "abcdef" for p in ("x", "y"))


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, KEYS, raise_rate=0.3, corrupt_rate=0.2)
        b = FaultPlan.seeded(7, KEYS, raise_rate=0.3, corrupt_rate=0.2)
        assert a == b
        for key in KEYS:
            assert a.spec_for(key) == b.spec_for(key)

    def test_different_seeds_differ(self):
        plans = {
            FaultPlan.seeded(s, KEYS, raise_rate=0.5).faults
            for s in range(8)
        }
        assert len(plans) > 1

    def test_rate_one_faults_everything(self):
        plan = FaultPlan.seeded(0, KEYS, raise_rate=1.0)
        assert len(plan) == len(KEYS)
        assert plan.count("raise") == len(KEYS)

    def test_rates_must_partition(self):
        with pytest.raises(ExecutionError, match="at most 1.0"):
            FaultPlan.seeded(0, KEYS, raise_rate=0.8, corrupt_rate=0.3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionError, match="unknown fault kind"):
            FaultSpec("explode")

    def test_wrap_raises_then_recovers(self, registry):
        plan = FaultPlan(faults=((3, FaultSpec("raise", failures=1)),))
        fn = plan.wrap(_double)
        assert fn(1) == 2
        with pytest.raises(TransientError, match="injected fault"):
            fn(3)
        assert fn(3) == 6  # second attempt sails through
        assert _count(registry, "faults.injected.raise") == 1

    def test_wrap_corrupts(self, registry):
        plan = FaultPlan(faults=((5, FaultSpec("corrupt", failures=1)),))
        fn = plan.wrap(_double)
        assert fn(5) == CorruptPayload()
        assert fn(5) == 10
        assert _count(registry, "faults.injected.corrupt") == 1

    def test_permanent_fault_never_recovers(self):
        plan = FaultPlan(faults=((1, FaultSpec("raise", failures=-1)),))
        fn = plan.wrap(_double)
        for _ in range(4):
            with pytest.raises(TransientError):
                fn(1)


# --- RetryPolicy ---------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.3)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.3)
        assert policy.delay_s(4) == pytest.approx(0.3)  # capped

    def test_retry_numbers_are_one_based(self):
        with pytest.raises(ExecutionError, match="1-based"):
            RetryPolicy().delay_s(0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ExecutionError, match="negative"):
            RetryPolicy(retries=-1)

    def test_with_validate_keeps_existing(self):
        policy = RetryPolicy(validate=_is_int)
        assert policy.with_validate(_double).validate is _is_int


# --- run_with_policy -----------------------------------------------------


class TestRunWithPolicy:
    def test_transient_failure_is_retried_away(self, registry):
        fn = _Flaky(failures=2)
        policy = RetryPolicy(retries=2, backoff_s=0.0)
        assert run_with_policy(fn, 4, policy) == 40
        assert _count(registry, "exec.retries") == 2

    def test_deterministic_error_not_retried(self, registry):
        policy = RetryPolicy(retries=3, backoff_s=0.0)
        with pytest.raises(SimulationError) as err:
            run_with_policy(_model_error, 1, policy)
        assert err.value.attempts == 1
        assert _count(registry, "exec.retries") == 0

    def test_exhausted_retries_raise_with_attempt_count(self, registry):
        fn = _Flaky(failures=99)
        policy = RetryPolicy(retries=2, backoff_s=0.0)
        with pytest.raises(TransientError) as err:
            run_with_policy(fn, 1, policy)
        assert err.value.attempts == 3
        assert _count(registry, "exec.retries") == 2

    def test_timeout_kills_hung_task(self, registry):
        policy = RetryPolicy(retries=1, backoff_s=0.0, timeout_s=0.2)
        t0 = time.perf_counter()
        with pytest.raises(TaskTimeoutError) as err:
            run_with_policy(_sleepy, 1, policy)
        assert time.perf_counter() - t0 < 2.0  # never waits the full 5 s
        assert err.value.attempts == 2
        assert _count(registry, "exec.timeouts") == 2

    def test_timeout_without_retry(self, registry):
        policy = RetryPolicy(
            retries=3, backoff_s=0.0, timeout_s=0.2, retry_timeouts=False
        )
        with pytest.raises(TaskTimeoutError) as err:
            run_with_policy(_sleepy, 1, policy)
        assert err.value.attempts == 1
        assert _count(registry, "exec.retries") == 0

    def test_corrupt_result_is_retried(self, registry):
        fn = _CorruptOnce()
        policy = RetryPolicy(retries=1, backoff_s=0.0, validate=_is_int)
        assert run_with_policy(fn, 3, policy) == 30
        assert _count(registry, "exec.invalid_results") == 1
        assert _count(registry, "exec.retries") == 1


# --- parallel_map integration --------------------------------------------


class TestParallelMapResilience:
    def test_capture_failures_degrades_to_record(self, registry):
        policy = RetryPolicy(retries=0, backoff_s=0.0)
        results = parallel_map(
            _transient_on_three, [1, 2, 3, 4], jobs=1,
            policy=policy, capture_failures=True,
        )
        assert results[0] == 2 and results[1] == 4 and results[3] == 8
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "TransientError"
        assert failure.attempts == 1 and not failure.timed_out
        assert "three is cursed" in failure.describe()

    def test_capture_timeout_marks_timed_out(self):
        policy = RetryPolicy(retries=0, backoff_s=0.0, timeout_s=0.1)
        [failure] = parallel_map(
            _sleepy, [1], jobs=1, policy=policy, capture_failures=True
        )
        assert isinstance(failure, TaskFailure) and failure.timed_out

    def test_faulted_parallel_matches_serial(self, registry):
        policy = RetryPolicy(retries=2, backoff_s=0.0)
        serial = parallel_map(_Flaky(failures=1), list(range(12)), jobs=1,
                              policy=policy)
        serial_retries = _count(registry, "exec.retries")
        parallel = parallel_map(_Flaky(failures=1), list(range(12)), jobs=2,
                                policy=policy)
        assert parallel == serial == [10 * x for x in range(12)]
        assert _count(registry, "exec.retries") == 2 * serial_retries


# --- the acceptance sweep: faults into a 2-platform study ----------------

SMALL2 = harness.ExperimentConfig(
    stencils=("7pt", "13pt"),
    domain=(64, 64, 64),
    platform_filter=("A100-CUDA", "MI250X-HIP"),
)

HUNG_KEY = ("13pt", "MI250X-HIP", "bricks_codegen")

#: 3 transient raises (1 + 2 + 1 sabotaged attempts) and one permanent
#: hang, aimed at specific points of the 12-point SMALL2 matrix.
PLAN = FaultPlan(faults=(
    (("7pt", "A100-CUDA", "array"), FaultSpec("raise", failures=1)),
    (("7pt", "MI250X-HIP", "bricks_codegen"), FaultSpec("raise", failures=2)),
    (("13pt", "A100-CUDA", "array_codegen"), FaultSpec("raise", failures=1)),
    (HUNG_KEY, FaultSpec("hang", failures=-1, hang_s=30.0)),
))

POLICY = RetryPolicy(retries=2, backoff_s=0.0, timeout_s=0.5)


class TestStudyDegradation:
    @pytest.fixture
    def clean(self):
        return harness.run_study(SMALL2, parallel=1)

    def test_faulted_sweep_degrades_gracefully(self, registry, clean):
        study = harness.run_study(
            SMALL2, parallel=2, policy=POLICY, fault_plan=PLAN
        )
        # Retried points recover bit-identically; only the hang is lost.
        assert len(study) == 11 and not study.complete
        assert set(clean.results) - set(study.results) == {HUNG_KEY}
        for key, result in study.results.items():
            assert result == clean.results[key]
        # The hang degraded into a structured FailedPoint.
        assert set(study.failed) == {HUNG_KEY}
        failed = study.failed[HUNG_KEY]
        assert failed.timed_out and failed.attempts == 3
        assert failed.error_type == "TaskTimeoutError"
        with pytest.raises(MetricError, match="failed"):
            study.get(*HUNG_KEY)
        # Counters account for every injection: one retry after each of
        # the 4 sabotaged raise attempts and the first 2 timeouts.
        assert _count(registry, "exec.retries") == 6
        assert _count(registry, "exec.timeouts") == 3
        assert _count(registry, "exec.failed_points") == 1
        assert _count(registry, "faults.injected.raise") == 4
        assert _count(registry, "faults.injected.hang") == 3

    def test_serial_and_parallel_fail_identically(self, registry):
        serial = harness.run_study(
            SMALL2, parallel=1, policy=POLICY, fault_plan=PLAN
        )
        mid = {
            name: _count(registry, name)
            for name in ("exec.retries", "exec.timeouts", "exec.failed_points")
        }
        parallel = harness.run_study(
            SMALL2, parallel=2, policy=POLICY, fault_plan=PLAN
        )
        assert parallel.results == serial.results
        assert parallel.failed == serial.failed
        for name, value in mid.items():
            assert _count(registry, name) == 2 * value, name

    def test_renderers_footnote_the_gap(self, registry, clean):
        study = harness.run_study(
            SMALL2, parallel=1, policy=POLICY, fault_plan=PLAN
        )
        rendered = table3(study).render()
        assert "n/a *" in rendered
        assert "failed to simulate" in rendered
        assert "13pt/MI250X-HIP/bricks_codegen" in rendered
        text = harness.summary(study)
        assert "FAILED points: 1" in text and "--resume" in text
        # Figures skip the gap instead of crashing.
        harness.fig3(study)
        harness.fig4(study)
        harness.fig7(study)


class TestCliFaultInjection:
    def test_study_with_injected_faults_recovers(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        harness.clear_study_cache()
        try:
            rc = cli.main(["study", "--inject-faults", "7", "--retries", "3"])
        finally:
            harness.clear_study_cache()
        out = capsys.readouterr().out
        assert rc == 0
        assert "FAILED" not in out  # transient faults fully recovered
