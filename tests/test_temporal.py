"""Tests for temporal blocking: composition, fusion, and the depth model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import dsl, gpu, temporal
from repro.errors import DSLError, LayoutError, SimulationError
from repro.reference import apply_interior, apply_periodic, random_field


class TestCompose:
    def test_composition_radius_adds(self):
        s = dsl.star(1)
        c = temporal.compose(s, s)
        assert c.radius == 2

    def test_composition_matches_sequential_application(self):
        case = dsl.by_name("7pt")
        s, b = case.build(), case.default_bindings()
        c = temporal.power(s, 2)
        field = random_field((12, 12, 12), seed=1)
        two_steps = apply_periodic(s, apply_periodic(s, field, b), b)
        composed = apply_periodic(c, field, b)
        np.testing.assert_allclose(composed, two_steps, rtol=1e-12, atol=1e-12)

    def test_symbolic_coefficients_multiply(self):
        s = dsl.star(1)
        c = temporal.compose(s, s)
        # The centre tap of the square holds B0^2 + 6 B1^2 terms.
        centre = c.taps[(0, 0, 0)]
        val = centre.evaluate({"B0": 2.0, "B1": 3.0})
        assert val == pytest.approx(2.0**2 + 6 * 3.0**2)

    def test_power_one_is_identity(self):
        s = dsl.star(2)
        assert temporal.power(s, 1) is s

    def test_power_validation(self):
        with pytest.raises(DSLError):
            temporal.power(dsl.star(1), 0)

    def test_dimension_mismatch(self):
        with pytest.raises(DSLError):
            temporal.compose(dsl.star(1), dsl.star(1, ndim=2))

    def test_cancellation_detected(self):
        plus = dsl.from_weights({(0, 0, 0): 1.0})
        minus = dsl.from_weights({(0, 0, 0): -1.0})
        c = temporal.compose(plus, minus)
        assert c.weights()[(0, 0, 0)] == -1.0

    @settings(max_examples=15, deadline=None)
    @given(
        w1=hst.floats(-2, 2).filter(lambda v: abs(v) > 1e-3),
        w2=hst.floats(-2, 2).filter(lambda v: abs(v) > 1e-3),
        seed=hst.integers(0, 30),
    )
    def test_composition_property(self, w1, w2, seed):
        a = dsl.from_weights({(0, 0, 0): w1, (1, 0, 0): 0.5, (0, -1, 0): -0.25})
        b = dsl.from_weights({(0, 0, 0): w2, (0, 0, 1): 1.0})
        c = temporal.compose(b, a)
        f = random_field((8, 8, 8), seed=seed)
        np.testing.assert_allclose(
            apply_periodic(c, f),
            apply_periodic(b, apply_periodic(a, f)),
            rtol=1e-10, atol=1e-10,
        )


class TestFusedApply:
    def test_matches_sequential(self):
        case = dsl.by_name("13pt")
        s, b = case.build(), case.default_bindings()
        steps, r = 3, s.radius
        padded = random_field((8 + 2 * steps * r,) * 3, seed=2)
        fused = temporal.fused_apply(s, steps, padded, b)
        seq = padded
        for _ in range(steps):
            seq = apply_interior(s, seq, b)
        np.testing.assert_allclose(fused, seq, rtol=1e-12, atol=1e-12)
        assert fused.shape == (8, 8, 8)

    def test_halo_validation(self):
        s = dsl.star(2)
        with pytest.raises(LayoutError):
            temporal.fused_apply(s, 3, np.zeros((10, 10, 10)))
        with pytest.raises(LayoutError):
            temporal.fused_apply(s, 0, np.zeros((20, 20, 20)))

    def test_fused_sweep_periodic(self):
        case = dsl.by_name("7pt")
        s, b = case.build(), case.default_bindings()
        field = random_field((16, 16, 32), seed=3)
        fused = temporal.fused_sweep(s, 2, field, b, tile=(8, 8, 16))
        ref = apply_periodic(s, apply_periodic(s, field, b), b)
        np.testing.assert_allclose(fused, ref, rtol=1e-12, atol=1e-12)

    def test_fused_sweep_tiling_validation(self):
        s = dsl.star(1)
        with pytest.raises(LayoutError):
            temporal.fused_sweep(s, 2, np.zeros((10, 16, 16)), tile=(8, 8, 8))


class TestDepthModel:
    def test_redundancy_grows_with_depth(self):
        s = dsl.star(1)
        plat = gpu.platform("A100", "CUDA")
        e1 = temporal.fusion_estimate(s, plat, 1)
        e4 = temporal.fusion_estimate(s, plat, 4)
        assert e1.redundancy == pytest.approx(1.0)  # single sweep: none
        assert e4.redundancy > 1.0
        assert e4.hbm_bytes_per_step < e1.hbm_bytes_per_step

    def test_low_ai_stencil_wants_fusion(self):
        # 7pt is deeply memory-bound: fusing beats a single sweep.
        s = dsl.star(1)
        best, ests = temporal.optimal_depth(s, gpu.platform("A100", "CUDA"))
        assert best > 1
        assert ests[best - 1].time_per_step_s < ests[0].time_per_step_s

    def test_high_ai_stencil_prefers_shallow(self):
        # The 125pt cube is already near compute-bound: depth stays low.
        s = dsl.cube(2)
        best_hi, _ = temporal.optimal_depth(
            s, gpu.platform("MI250X", "HIP"), tile=(32, 16, 16)
        )
        s_lo = dsl.star(1)
        best_lo, _ = temporal.optimal_depth(
            s_lo, gpu.platform("MI250X", "HIP"), tile=(32, 16, 16)
        )
        assert best_hi < best_lo

    def test_validation(self):
        s = dsl.star(2)
        plat = gpu.platform("A100", "CUDA")
        with pytest.raises(SimulationError):
            temporal.fusion_estimate(s, plat, 0)
        with pytest.raises(SimulationError):
            temporal.fusion_estimate(s, plat, 10, tile=(8, 8, 8))
        with pytest.raises(SimulationError):
            temporal.optimal_depth(s, plat, tile=(2, 2, 2))
