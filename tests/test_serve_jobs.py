"""Serving core: job lifecycle, queue backpressure, store, orchestrator."""

import time

import pytest

from repro import harness, obs
from repro.errors import QueueFullError, ServeError
from repro.harness.experiments import ExperimentConfig, config_from_dict
from repro.serve import (
    JOB_STATES,
    MAX_SLEEP_S,
    Job,
    JobOptions,
    JobQueue,
    Orchestrator,
    ResultStore,
)

SMALL = ExperimentConfig(stencils=("7pt",), variants=("array",), domain=(64, 64, 64))
OTHER = ExperimentConfig(stencils=("13pt",), variants=("array",), domain=(64, 64, 64))

#: Chaos seed verified to degrade exactly >= 1 of SMALL's 5 points with
#: retries=0 under JobOptions' seeded rates (determinism contract of
#: FaultPlan.seeded: same seed + same key set => same injections).
DEGRADING_SEED = 0


@pytest.fixture
def registry():
    prev = obs.get_registry()
    reg = obs.set_registry(obs.MetricsRegistry())
    yield reg
    obs.set_registry(prev)


def wait_for(predicate, timeout_s=30.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestJobOptions:
    def test_defaults_are_clean_and_batchable(self):
        o = JobOptions()
        assert o.clean and o.batchable
        assert o.policy() is None
        assert o.fault_plan(SMALL) is None
        assert o.to_dict() == {}

    def test_round_trip(self):
        o = JobOptions(retries=3, task_timeout=5.0, dispatch="serial")
        assert JobOptions.from_dict(o.to_dict()) == o

    def test_retries_zero_survives_round_trip(self):
        # A 0 must not be dropped like a None (0 == 0.0 pitfall).
        o = JobOptions(retries=0)
        assert o.to_dict() == {"retries": 0}
        assert JobOptions.from_dict(o.to_dict()).retries == 0

    def test_chaos_job_is_not_clean(self):
        assert not JobOptions(inject_faults=7).clean

    def test_sleepy_job_is_not_clean(self):
        assert not JobOptions(sleep_s=0.5).clean

    def test_pinned_pool_dispatch_is_not_batchable(self):
        o = JobOptions(dispatch="pool")
        assert o.clean and not o.batchable

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dispatch": "warp-speed"},
            {"sleep_s": -1.0},
            {"sleep_s": MAX_SLEEP_S + 1},
            {"retries": -1},
            {"task_timeout": 0.0},
        ],
    )
    def test_invalid_options_raise(self, kwargs):
        with pytest.raises(ServeError):
            JobOptions(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ServeError, match="unknown option"):
            JobOptions.from_dict({"retries": 1, "priority": "high"})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ServeError, match="JSON object"):
            JobOptions.from_dict([1, 2])


class TestJobLifecycle:
    def test_happy_path_done(self, registry):
        job = Job(config=SMALL, options=JobOptions())
        assert job.state == "queued" and not job.finished
        job.transition("running")
        assert job.started_s is not None
        job.transition("done")
        assert job.finished and job.finished_s is not None
        assert registry.counter("serve.jobs.done").value == 1

    def test_failure_path(self):
        job = Job(config=SMALL, options=JobOptions())
        job.transition("running")
        job.transition("failed")
        assert job.finished

    def test_cancel_from_queued_only(self):
        job = Job(config=SMALL, options=JobOptions())
        job.transition("cancelled")
        assert job.state == "cancelled"

    @pytest.mark.parametrize(
        "path",
        [
            ("done",),  # queued -> done skips running
            ("failed",),  # queued -> failed skips running
            ("running", "cancelled"),  # running jobs cannot cancel
            ("queued", ),  # re-queueing a queued job is meaningless
            ("running", "done", "running"),  # terminal states are final
            ("running", "done", "failed"),
        ],
    )
    def test_illegal_transitions_raise(self, path):
        job = Job(config=SMALL, options=JobOptions())
        with pytest.raises(ServeError, match="illegal transition"):
            for state in path:
                job.transition(state)

    def test_crash_requeue_edge_resets_the_clock(self):
        # running -> queued is the crash-recovery edge: a job whose
        # worker died goes back to the queue with its start time wiped.
        job = Job(config=SMALL, options=JobOptions())
        job.transition("running")
        assert job.started_s is not None
        job.transition("queued")
        assert job.state == "queued"
        assert job.started_s is None
        job.transition("running")
        job.transition("done")
        assert job.finished

    def test_unknown_state_raises(self):
        job = Job(config=SMALL, options=JobOptions())
        with pytest.raises(ServeError, match="unknown job state"):
            job.transition("paused")

    def test_config_hash_is_the_study_cache_key(self):
        job = Job(config=SMALL, options=JobOptions())
        assert job.config_hash == harness.study_cache_key(SMALL)

    def test_status_dict_is_json_safe(self):
        import json

        job = Job(config=SMALL, options=JobOptions(retries=2))
        doc = json.loads(json.dumps(job.status_dict()))
        assert doc["state"] == "queued"
        assert doc["options"] == {"retries": 2}
        assert doc["config"]["stencils"] == ["7pt"]

    def test_states_catalogue(self):
        assert set(JOB_STATES) == {
            "queued", "running", "done", "failed", "cancelled"
        }


class TestJobQueue:
    def _job(self, config=SMALL):
        return Job(config=config, options=JobOptions())

    def test_fifo(self):
        q = JobQueue(limit=4)
        a, b = self._job(), self._job()
        q.put(a), q.put(b)
        assert q.get(0.1) is a and q.get(0.1) is b

    def test_full_queue_rejects_with_retry_after(self, registry):
        q = JobQueue(limit=2)
        q.put(self._job()), q.put(self._job())
        with pytest.raises(QueueFullError) as err:
            q.put(self._job(), retry_after_s=7.0)
        assert err.value.retry_after_s == 7.0
        assert registry.counter("serve.rejected").value == 1

    def test_get_timeout_returns_none(self):
        assert JobQueue().get(timeout_s=0.05) is None

    def test_drain_stops_at_first_rejected_head(self):
        q = JobQueue(limit=8)
        batchable = [self._job() for _ in range(2)]
        solo = Job(config=SMALL, options=JobOptions(dispatch="pool"))
        tail = self._job()
        for job in [*batchable, solo, tail]:
            q.put(job)
        taken = q.drain(10, lambda j: j.options.batchable)
        assert taken == batchable  # stops at the pool job: FIFO fairness
        assert q.get(0.1) is solo

    def test_remove_supports_cancellation(self):
        q = JobQueue()
        job = self._job()
        q.put(job)
        assert q.remove(job) and len(q) == 0
        assert not q.remove(job)

    def test_closed_queue_rejects_and_wakes_getters(self):
        q = JobQueue()
        q.close()
        assert q.get(timeout_s=10.0) is None  # returns at once, no wait
        with pytest.raises(QueueFullError, match="closed"):
            q.put(self._job())


class TestResultStore:
    def test_miss_then_hit(self, registry):
        store = ResultStore()
        assert store.get(SMALL) is None
        study = harness.run_study(SMALL)
        assert store.put(study)
        assert store.get(SMALL) is study
        assert registry.counter("serve.store.misses").value == 1
        assert registry.counter("serve.store.hits").value == 1

    def test_incomplete_study_is_refused(self):
        options = JobOptions(inject_faults=DEGRADING_SEED, retries=0)
        degraded = harness.run_study(
            SMALL, policy=options.policy(),
            fault_plan=options.fault_plan(SMALL),
        )
        assert degraded.failed  # the seed contract
        store = ResultStore()
        assert not store.put(degraded)
        assert store.get(SMALL) is None

    def test_disk_promotion_shares_with_cli_cache(self, tmp_path, registry):
        study = harness.run_study(SMALL)
        # A CLI run left this on disk...
        harness.save_study_cache(study, str(tmp_path))
        # ...and a fresh server warm-starts from it.
        store = ResultStore(cache_dir=str(tmp_path))
        loaded = store.get(SMALL)
        assert loaded is not None and loaded.results == study.results
        assert registry.counter("serve.store.disk_hits").value == 1
        # Promotion: second get is a pure memory hit.
        assert store.get(SMALL) is loaded

    def test_put_persists_for_other_instances(self, tmp_path):
        study = harness.run_study(SMALL)
        ResultStore(cache_dir=str(tmp_path)).put(study)
        again = ResultStore(cache_dir=str(tmp_path)).get(SMALL)
        assert again is not None and again.results == study.results

    def test_promote_race_is_idempotent(self, tmp_path, registry, monkeypatch):
        """Two threads disk-missing the same key promote exactly once."""
        import threading

        from repro.serve import store as store_mod

        harness.save_study_cache(harness.run_study(SMALL), str(tmp_path))
        store = ResultStore(cache_dir=str(tmp_path))

        barrier = threading.Barrier(2, timeout=10.0)
        real_load = store_mod.load_study_cache

        def synchronized_load(config, cache_dir):
            study = real_load(config, cache_dir)
            barrier.wait()  # both threads hold a loaded copy before promoting
            return study

        monkeypatch.setattr(store_mod, "load_study_cache", synchronized_load)
        results = [None, None]

        def get(n):
            results[n] = store.get(SMALL)

        threads = [
            threading.Thread(target=get, args=(n,)) for n in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Both racers got the same object — the winning promotion — and
        # the loser's copy was discarded and counted.
        assert results[0] is not None
        assert results[0] is results[1]
        assert registry.counter("serve.store.promote_races").value == 1
        assert registry.counter("serve.store.disk_hits").value == 2


class TestOrchestrator:
    def test_dedup_short_circuits_simulation(self, registry):
        orch = Orchestrator(ResultStore())
        orch.store.put(harness.run_study(SMALL))
        calls = []
        orch._run_study = lambda *a, **k: calls.append(1)  # must not run
        job = orch.submit(SMALL)
        assert job.state == "done" and job.dedup
        assert job.study is not None and job.study.complete
        assert not calls
        assert registry.counter("serve.dedup_hits").value == 1

    def test_inflight_coalescing_returns_same_job(self, registry):
        orch = Orchestrator(ResultStore())  # never started: job stays queued
        a = orch.submit(SMALL)
        b = orch.submit(SMALL)
        assert a is b
        assert registry.counter("serve.coalesced").value == 1
        # A different config is its own job.
        assert orch.submit(OTHER) is not a

    def test_chaos_jobs_never_coalesce(self, registry):
        orch = Orchestrator(ResultStore())
        a = orch.submit(SMALL, JobOptions(inject_faults=1))
        b = orch.submit(SMALL, JobOptions(inject_faults=1))
        assert a is not b

    def test_backpressure_raises_queue_full(self, registry):
        orch = Orchestrator(ResultStore(), queue_limit=2)  # not started
        orch.submit(SMALL)
        orch.submit(OTHER)
        third = ExperimentConfig(
            stencils=("19pt",), variants=("array",), domain=(64, 64, 64)
        )
        with pytest.raises(QueueFullError) as err:
            orch.submit(third)
        assert err.value.retry_after_s >= 1.0

    def test_end_to_end_single_job(self, registry):
        orch = Orchestrator(ResultStore(), workers=1)
        orch.start()
        try:
            job = orch.submit(SMALL)
            assert wait_for(lambda: job.finished)
            assert job.state == "done"
            assert job.study is not None and job.study.complete
            # Result entered the shared store: next submit dedups.
            assert orch.submit(SMALL).dedup
        finally:
            orch.stop()

    def test_microbatch_fuses_queued_jobs(self, registry):
        orch = Orchestrator(ResultStore(), workers=1, batch_window=8)
        configs = [
            ExperimentConfig(stencils=(s,), variants=("array",),
                             domain=(64, 64, 64))
            for s in ("7pt", "13pt", "19pt")
        ]
        jobs = [orch.submit(c) for c in configs]  # queued before start()
        orch.start()
        try:
            assert wait_for(lambda: all(j.finished for j in jobs))
        finally:
            orch.stop()
        assert [j.state for j in jobs] == ["done"] * 3
        assert all(j.study.complete for j in jobs)
        # One fused sweep, not three: 3 groups, 15 points, one batch.
        assert registry.counter("serve.microbatch.jobs").value == 3
        assert registry.counter("exec.dispatch.microbatch.groups").value == 3
        assert registry.counter("exec.dispatch.microbatch.points").value == 15

    def test_microbatched_results_match_direct_run(self, registry):
        orch = Orchestrator(ResultStore(), workers=1, batch_window=4)
        jobs = [orch.submit(c) for c in (SMALL, OTHER)]
        orch.start()
        try:
            assert wait_for(lambda: all(j.finished for j in jobs))
        finally:
            orch.stop()
        for config, job in zip((SMALL, OTHER), jobs):
            assert job.study.results == harness.run_study(config).results

    def test_fault_job_degrades_without_wedging_the_queue(self, registry):
        orch = Orchestrator(ResultStore(), workers=1)
        chaos = orch.submit(
            SMALL, JobOptions(inject_faults=DEGRADING_SEED, retries=0)
        )
        clean = orch.submit(SMALL)  # distinct job: chaos never coalesces
        assert chaos is not clean
        orch.start()
        try:
            assert wait_for(lambda: chaos.finished and clean.finished)
        finally:
            orch.stop()
        # The chaos job finished degraded (FailedPoints, not a crash)...
        assert chaos.state == "done"
        assert chaos.study.failed and not chaos.study.complete
        # ...its degraded result never entered the shared store...
        assert clean.state == "done" and clean.study.complete
        # ...and the clean result is what later tenants are served.
        assert orch.submit(SMALL).study.complete

    def test_crashing_job_fails_cleanly(self, registry):
        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        orch = Orchestrator(ResultStore(), workers=1, run_study_fn=explode)
        job = orch.submit(SMALL, JobOptions(dispatch="serial"))
        orch.start()
        try:
            assert wait_for(lambda: job.finished)
            assert job.state == "failed"
            assert "RuntimeError: boom" in job.error
            assert registry.counter("serve.job_errors").value == 1
            # The worker survived; a fresh submission is NOT dedup'd to
            # the failure and the queue still serves.
            retry = orch.submit(SMALL, JobOptions(dispatch="serial"))
            assert wait_for(lambda: retry.finished)
            assert retry.state == "failed"  # stub still explodes
        finally:
            orch.stop()

    def test_cancel_queued_job(self, registry):
        orch = Orchestrator(ResultStore())  # not started
        job = orch.submit(SMALL)
        cancelled = orch.cancel(job.job_id)
        assert cancelled is job and job.state == "cancelled"
        # Cancellation released the in-flight slot: resubmit is fresh.
        assert orch.submit(SMALL) is not job

    def test_cancel_finished_job_refuses(self, registry):
        orch = Orchestrator(ResultStore(), workers=1)
        orch.start()
        try:
            job = orch.submit(SMALL)
            assert wait_for(lambda: job.finished)
            with pytest.raises(ServeError, match="not queued"):
                orch.cancel(job.job_id)
        finally:
            orch.stop()

    def test_unknown_job_raises(self):
        with pytest.raises(ServeError, match="no such job"):
            Orchestrator(ResultStore()).job("j99999")

    def test_invalid_sizing_raises(self):
        with pytest.raises(ServeError):
            Orchestrator(ResultStore(), workers=0)
        with pytest.raises(ServeError):
            Orchestrator(ResultStore(), batch_window=0)
