"""Tests for the Roofline model and the mixbench ceiling derivation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetricError
from repro.gpu import platform, study_platforms
from repro.roofline import Roofline, empirical_roofline, sweep


class TestRoofline:
    def test_ridge_point(self):
        r = Roofline("x", peak_flops=10e12, peak_bw=2e12)
        assert r.ridge_point == 5.0

    def test_attainable_memory_side(self):
        r = Roofline("x", peak_flops=10e12, peak_bw=2e12)
        assert r.attainable(1.0) == 2e12
        assert r.is_memory_bound(1.0)

    def test_attainable_compute_side(self):
        r = Roofline("x", peak_flops=10e12, peak_bw=2e12)
        assert r.attainable(100.0) == 10e12
        assert not r.is_memory_bound(100.0)

    def test_fraction(self):
        r = Roofline("x", peak_flops=10e12, peak_bw=2e12)
        assert r.fraction(1e12, 1.0) == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(MetricError):
            Roofline("x", peak_flops=0, peak_bw=1)
        r = Roofline("x", peak_flops=1e12, peak_bw=1e12)
        with pytest.raises(MetricError):
            r.attainable(0.0)
        with pytest.raises(MetricError):
            r.fraction(-1.0, 1.0)

    def test_curve(self):
        r = Roofline("x", peak_flops=10e12, peak_bw=2e12)
        curve = r.curve([0.5, 5.0, 50.0])
        assert curve[0] == (0.5, 1e12)
        assert curve[-1] == (50.0, 10e12)

    @settings(max_examples=30, deadline=None)
    @given(
        ai=st.floats(0.01, 1e4),
        peak=st.floats(1e11, 1e14),
        bw=st.floats(1e10, 1e13),
    )
    def test_attainable_properties(self, ai, peak, bw):
        r = Roofline("p", peak_flops=peak, peak_bw=bw)
        a = r.attainable(ai)
        assert a <= peak
        assert a <= ai * bw + 1e-6
        # Monotone in AI.
        assert r.attainable(ai * 2) >= a


class TestMixbench:
    def test_sweep_monotone_then_flat(self):
        plat = platform("A100", "CUDA")
        pts = sweep(plat)
        gf = [p.gflops for p in pts]
        assert gf == sorted(gf)

    @pytest.mark.parametrize("plat", study_platforms(), ids=lambda p: p.name)
    def test_empirical_below_vendor_peaks(self, plat):
        roof = empirical_roofline(plat)
        assert roof.peak_flops <= plat.arch.peak_fp64
        assert roof.peak_bw <= plat.arch.hbm_bw

    def test_empirical_matches_profile_fractions(self):
        plat = platform("A100", "CUDA")
        roof = empirical_roofline(plat)
        expect_bw = plat.arch.hbm_bw * plat.profile.mixbench_bw_frac
        expect_fp = plat.arch.peak_fp64 * plat.profile.mixbench_fp_frac
        # Launch overhead skews the sweep slightly below the analytic
        # asymptote.
        assert roof.peak_bw == pytest.approx(expect_bw, rel=0.02)
        assert roof.peak_flops == pytest.approx(expect_fp, rel=0.02)

    def test_a100_bandwidth_ceiling_realistic(self):
        # mixbench on A100 measures ~1.4 TB/s.
        roof = empirical_roofline(platform("A100", "CUDA"))
        assert 1.3e12 < roof.peak_bw < 1.5e12
