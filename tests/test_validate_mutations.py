"""Mutation tests: re-introduce each fixed bug, assert validate catches it.

Each test monkeypatches one historical bug back into the model behind
the module attribute the validation probes call through, runs the same
probe pass ``repro-stencil validate`` runs, and asserts the violation
naming that invariant appears.  This is the proof that the validation
pass catches *real* bugs, not hypothetical ones — every mutation here
shipped in this repository at some point.
"""

import pytest

from repro import dsl, gpu, validate
from repro.dsl.analysis import FP64_BYTES
from repro.errors import ValidationError
from repro.gpu import timing, traffic
from repro.harness import experiments
from repro.metrics import speedup
from repro.util import prod
from repro.validate import invariants as inv_mod


def probe_violations():
    violations, _ = inv_mod.run_probes()
    return violations


def names(violations):
    return {v.invariant for v in violations}


class TestShuffleVendorMutation:
    def test_bare_keyerror_lookup_is_flagged(self, monkeypatch):
        # The original bug: SHUFFLE_CYCLES[vendor] with no error contract.
        monkeypatch.setattr(
            timing, "shuffle_cycles_for",
            lambda vendor: timing.SHUFFLE_CYCLES[vendor],
        )
        violations = probe_violations()
        assert "unknown-vendor-error-contract" in names(violations)

    def test_wrong_exception_type_is_flagged(self, monkeypatch):
        def wrong(vendor):
            raise LookupError(f"no such vendor {vendor}")

        monkeypatch.setattr(timing, "shuffle_cycles_for", wrong)
        assert "unknown-vendor-error-contract" in names(probe_violations())


class TestLayerConditionMutation:
    def test_hardcoded_2r_reread_is_flagged(self, monkeypatch):
        # The original bug: re-read volume used 2r for both layouts even
        # though bricks only share the r boundary planes.
        def buggy(stencil, layout, tile_k, domain, llc_effective_bytes):
            ni, nj, _ = domain
            r = stencil.radius
            shared_planes = 2 * r if layout == "array" else r
            working_set = ni * nj * shared_planes * FP64_BYTES
            if working_set <= llc_effective_bytes:
                return 0.0
            miss_fraction = (working_set - llc_effective_bytes) / working_set
            n = prod(domain)
            return miss_fraction * (2 * r / tile_k) * n * FP64_BYTES

        monkeypatch.setattr(traffic, "layer_condition_extra", buggy)
        violations = probe_violations()
        assert "brick-reread-proportional-to-shared-planes" in names(violations)


class TestSpeedupBandMutation:
    def test_three_band_partition_is_flagged(self, monkeypatch):
        # The original bug: three bands where the paper annotates four.
        def buggy_band(self):
            s = self.potential_speedup
            if s <= 2.0:
                return "<=2x"
            if s <= 4.0:
                return "<=4x"
            return ">4x"

        monkeypatch.setattr(speedup.SpeedupPoint, "band", buggy_band)
        violations = probe_violations()
        assert "speedup-band-partition" in names(violations)

    def test_truncated_bands_tuple_is_flagged(self, monkeypatch):
        monkeypatch.setattr(speedup, "BANDS", ("<=2x", "<=4x", ">4x"))
        assert "speedup-band-partition" in names(probe_violations())


class TestResumeMutation:
    def test_memo_replaying_failures_is_flagged(self, monkeypatch):
        # The original bug: cached_study served a memoised *degraded*
        # study on resume=True, so checkpointed FailedPoints were
        # replayed as permanent instead of re-attempted.
        real_run_study = experiments.run_study

        def buggy_cached_study(
            config=None, parallel=None, cache_dir=None, *,
            retry_policy=None, fault_plan=None, resume=False,
        ):
            from repro.harness import serialization

            config = config or experiments.ExperimentConfig()
            cache_dir = experiments._resolve_cache_dir(cache_dir)
            if config not in experiments._STUDY_CACHE:
                study = None
                if cache_dir:
                    study = serialization.load_study_cache(config, cache_dir)
                if study is None:
                    study = real_run_study(
                        config, parallel=parallel, policy=retry_policy,
                        fault_plan=fault_plan, cache_dir=cache_dir,
                        resume=resume,
                    )
                experiments._STUDY_CACHE[config] = study
            return experiments._STUDY_CACHE[config]

        monkeypatch.setattr(experiments, "cached_study", buggy_cached_study)
        violations = probe_violations()
        assert "resume-reattempts-failures" in names(violations)
        flagged = [
            v for v in violations
            if v.invariant == "resume-reattempts-failures"
        ]
        assert any("replayed" in v.message for v in flagged)


class TestResultInvariantMutations:
    """Result-level invariants catch model breakage through the
    opt-in ``check_invariants=`` hook of ``simulate``."""

    def sim(self, **kw):
        return gpu.simulate(
            dsl.by_name("13pt").build(), "bricks_codegen",
            gpu.platform("A100", "CUDA"), stencil_name="13pt", **kw
        )

    def test_occupancy_above_one_is_flagged(self, monkeypatch):
        monkeypatch.setattr(timing, "occupancy_factor", lambda r, b: 1.5)
        with pytest.raises(ValidationError) as exc:
            self.sim(check_invariants=True)
        assert "occupancy-is-a-fraction" in str(exc.value)

    def test_negative_shuffle_cost_is_flagged(self, monkeypatch):
        monkeypatch.setattr(timing, "shuffle_cycles_for", lambda vendor: -1.0)
        with pytest.raises(ValidationError) as exc:
            self.sim(check_invariants=True)
        assert "timing-terms-physical" in str(exc.value)

    def test_lost_compulsory_traffic_is_flagged(self, monkeypatch):
        monkeypatch.setattr(
            traffic, "layer_condition_extra",
            lambda *a, **k: -2.0e9,  # "negative re-reads" sink the total
        )
        with pytest.raises(ValidationError) as exc:
            self.sim(check_invariants=True)
        text = str(exc.value)
        assert "hbm-at-least-compulsory" in text
        assert "reuse-miss-bytes-sane" in text


class TestHealthyBaseline:
    def test_no_mutation_means_no_violations(self):
        """Guards the mutation tests themselves: the probe pass must be
        clean without a mutation, or the assertions above prove nothing."""
        violations, count = inv_mod.run_probes()
        assert violations == []
        assert count >= 7
        assert validate.check_result(
            gpu.simulate(
                dsl.by_name("13pt").build(), "bricks_codegen",
                gpu.platform("A100", "CUDA"), stencil_name="13pt",
            )
        ) == []
