"""Checkpoint/resume: an interrupted sweep finishes with zero rework.

With a cache directory, ``run_study`` flushes completed points to an
atomic checkpoint as it goes; ``resume=True`` preloads that checkpoint
so only the missing points are re-simulated.  A completed sweep clears
its checkpoint (the full-study disk cache takes over from there).
"""

import pytest

from repro import harness, obs
from repro.harness import serialization
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy

#: 6-point sweep: 2 stencils x 1 platform x 3 variants, sweep order
#: 7pt/array, 7pt/array_codegen, 7pt/bricks_codegen, then 13pt likewise.
CONFIG = harness.ExperimentConfig(
    stencils=("7pt", "13pt"),
    domain=(64, 64, 64),
    platform_filter=("A100-CUDA",),
)

INTERRUPT_KEY = ("13pt", "A100-CUDA", "array_codegen")  # 5th of 6
FAIL_KEY = ("13pt", "A100-CUDA", "bricks_codegen")


@pytest.fixture
def registry():
    prev = obs.get_registry()
    reg = obs.set_registry(obs.MetricsRegistry())
    yield reg
    obs.set_registry(prev)


def _count(registry, name):
    try:
        return registry.get(name).value
    except Exception:
        return 0


class TestInterruptAndResume:
    def test_interrupt_leaves_checkpoint_resume_finishes(
        self, registry, tmp_path
    ):
        cache_dir = str(tmp_path)
        plan = FaultPlan(faults=(
            (INTERRUPT_KEY, FaultSpec("interrupt", failures=-1)),
        ))
        with pytest.raises(KeyboardInterrupt):
            harness.run_study(
                CONFIG, parallel=1, fault_plan=plan,
                cache_dir=cache_dir, checkpoint_every=1,
            )
        # Every point completed before the interrupt was flushed.
        done = serialization.load_study_checkpoint(CONFIG, cache_dir)
        assert done is not None and len(done) == 4
        assert INTERRUPT_KEY not in done

        calls_before = _count(registry, "simulate.calls")
        study = harness.run_study(
            CONFIG, parallel=1, cache_dir=cache_dir, resume=True
        )
        # Only the 2 missing points were simulated; 4 came for free.
        assert study.complete and len(study) == 6
        assert _count(registry, "simulate.calls") - calls_before == 2
        assert _count(registry, "study.resumed_points") == 4
        # A complete sweep needs no checkpoint any more.
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) is None

    def test_resumed_study_matches_single_shot(self, registry, tmp_path):
        cache_dir = str(tmp_path)
        plan = FaultPlan(faults=(
            (INTERRUPT_KEY, FaultSpec("interrupt", failures=-1)),
        ))
        with pytest.raises(KeyboardInterrupt):
            harness.run_study(
                CONFIG, parallel=1, fault_plan=plan,
                cache_dir=cache_dir, checkpoint_every=1,
            )
        resumed = harness.run_study(
            CONFIG, parallel=1, cache_dir=cache_dir, resume=True
        )
        single = harness.run_study(CONFIG, parallel=1)
        assert resumed.results == single.results
        # Same canonical iteration order, not just the same mapping.
        assert list(resumed.results) == list(single.results)

    def test_failed_point_finishes_on_resume(self, registry, tmp_path):
        cache_dir = str(tmp_path)
        plan = FaultPlan(faults=(
            (FAIL_KEY, FaultSpec("raise", failures=-1)),
        ))
        policy = RetryPolicy(retries=1, backoff_s=0.0)
        study = harness.run_study(
            CONFIG, parallel=1, policy=policy, fault_plan=plan,
            cache_dir=cache_dir,
        )
        assert not study.complete and set(study.failed) == {FAIL_KEY}
        # The degraded run checkpoints its 5 good points plus the
        # FailedPoint record (so --resume knows failed vs. never-ran).
        done = serialization.load_study_checkpoint(CONFIG, cache_dir)
        assert done is not None
        assert set(done) == set(study.results) | {FAIL_KEY}
        assert isinstance(done[FAIL_KEY], harness.FailedPoint)

        calls_before = _count(registry, "simulate.calls")
        retry = harness.run_study(
            CONFIG, parallel=1, cache_dir=cache_dir, resume=True
        )
        assert retry.complete and not retry.failed
        assert _count(registry, "simulate.calls") - calls_before == 1
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) is None

    def test_interrupt_then_fail_then_resume_with_higher_retries(
        self, registry, tmp_path
    ):
        """The full degradation story: an interrupted sweep leaves a
        checkpoint, the first resume still fails one point permanently
        (too few retries for its transient fault), and a second resume
        under a higher retry budget re-attempts that FailedPoint and
        completes — it is never replayed as a permanent failure."""
        cache_dir = str(tmp_path)
        interrupt = FaultPlan(faults=(
            (INTERRUPT_KEY, FaultSpec("interrupt", failures=-1)),
        ))
        with pytest.raises(KeyboardInterrupt):
            harness.run_study(
                CONFIG, parallel=1, fault_plan=interrupt,
                cache_dir=cache_dir, checkpoint_every=1,
            )

        # Resume #1: FAIL_KEY needs 3 attempts but the policy allows 2.
        flaky = FaultPlan(faults=(
            (FAIL_KEY, FaultSpec("raise", failures=3)),
        ))
        degraded = harness.run_study(
            CONFIG, parallel=1, fault_plan=flaky,
            policy=RetryPolicy(retries=1, backoff_s=0.0),
            cache_dir=cache_dir, resume=True,
        )
        assert not degraded.complete
        assert set(degraded.failed) == {FAIL_KEY}
        done = serialization.load_study_checkpoint(CONFIG, cache_dir)
        assert done is not None and FAIL_KEY in done

        # Resume #2: a higher retry budget re-attempts the failed point
        # (fresh fault plan: the fault is transient across runs too).
        calls_before = _count(registry, "simulate.calls")
        final = harness.run_study(
            CONFIG, parallel=1,
            policy=RetryPolicy(retries=3, backoff_s=0.0),
            cache_dir=cache_dir, resume=True,
        )
        assert final.complete and not final.failed
        # Only the failed point was re-simulated; the 5 good points
        # (4 pre-interrupt + 1 from resume #1) came from the checkpoint.
        assert _count(registry, "simulate.calls") - calls_before == 1
        assert _count(registry, "study.reattempted_failures") == 1
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) is None

    def test_cached_study_resume_bypasses_degraded_memo(
        self, registry, tmp_path
    ):
        """cached_study memoises a degraded sweep (renders shouldn't
        re-simulate), but an explicit resume=True must bypass both the
        in-process memo and any stale on-disk entry and re-attempt the
        failures — this was the --resume bug."""
        cache_dir = str(tmp_path)
        plan = FaultPlan(faults=(
            (FAIL_KEY, FaultSpec("raise", failures=-1)),
        ))
        harness.clear_study_cache()
        try:
            degraded = harness.cached_study(
                CONFIG, parallel=1, cache_dir=cache_dir,
                retry_policy=RetryPolicy(retries=1, backoff_s=0.0),
                fault_plan=plan,
            )
            assert not degraded.complete and FAIL_KEY in degraded.failed
            # Without resume, the memo serves the degraded study as-is.
            assert harness.cached_study(
                CONFIG, parallel=1, cache_dir=cache_dir
            ) is degraded

            resumed = harness.cached_study(
                CONFIG, parallel=1, cache_dir=cache_dir, resume=True
            )
            assert resumed is not degraded
            assert resumed.complete and not resumed.failed
            assert resumed.has(*FAIL_KEY)
            assert _count(registry, "study_cache.resume_retries") == 1
        finally:
            harness.clear_study_cache()

    def test_resume_with_no_checkpoint_runs_everything(
        self, registry, tmp_path
    ):
        study = harness.run_study(
            CONFIG, parallel=1, cache_dir=str(tmp_path), resume=True
        )
        assert study.complete
        assert _count(registry, "study.resumed_points") == 0
        assert _count(registry, "simulate.calls") == 6

    def test_complete_run_leaves_no_checkpoint(self, registry, tmp_path):
        cache_dir = str(tmp_path)
        harness.run_study(CONFIG, parallel=1, cache_dir=cache_dir)
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) is None


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        cache_dir = str(tmp_path)
        results = {("7pt", "A100-CUDA", "array"): "sentinel"}
        path = serialization.save_study_checkpoint(CONFIG, results, cache_dir)
        assert path == serialization.study_checkpoint_path(cache_dir, CONFIG)
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) == results

    def test_config_mismatch_loads_none(self, tmp_path):
        cache_dir = str(tmp_path)
        serialization.save_study_checkpoint(CONFIG, {}, cache_dir)
        other = harness.ExperimentConfig(
            stencils=("7pt",), domain=(64, 64, 64),
            platform_filter=("A100-CUDA",),
        )
        assert serialization.load_study_checkpoint(other, cache_dir) is None

    def test_corrupt_file_loads_none(self, tmp_path):
        cache_dir = str(tmp_path)
        serialization.save_study_checkpoint(CONFIG, {}, cache_dir)
        with open(
            serialization.study_checkpoint_path(cache_dir, CONFIG), "wb"
        ) as f:
            f.write(b"not a pickle")
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) is None

    def test_missing_file_loads_none(self, tmp_path):
        assert (
            serialization.load_study_checkpoint(CONFIG, str(tmp_path)) is None
        )

    def test_clear_is_idempotent(self, tmp_path):
        cache_dir = str(tmp_path)
        serialization.save_study_checkpoint(CONFIG, {}, cache_dir)
        serialization.clear_study_checkpoint(CONFIG, cache_dir)
        serialization.clear_study_checkpoint(CONFIG, cache_dir)  # no error
        assert serialization.load_study_checkpoint(CONFIG, cache_dir) is None
