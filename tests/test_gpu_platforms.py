"""Tests for architecture descriptors and programming-model profiles."""

import pytest

from repro.errors import SimulationError
from repro.gpu import (
    A100,
    MI250X,
    PVC,
    PROFILES,
    STUDY_PLATFORMS,
    VARIANTS,
    VariantProfile,
    architecture,
    platform,
    study_platforms,
)


class TestArchitectures:
    def test_paper_simd_widths(self):
        # Paper Section 4.4: vector_size 32 / 64 / 16.
        assert A100.simd_width == 32
        assert MI250X.simd_width == 64
        assert PVC.simd_width == 16

    def test_paper_peaks(self):
        # Section 4.1: ~9.77, ~24 (per GCD), ~16 (per stack) TFLOP/s.
        assert A100.peak_fp64 == pytest.approx(9.7e12, rel=0.02)
        assert MI250X.peak_fp64 == pytest.approx(24e12, rel=0.02)
        assert PVC.peak_fp64 == pytest.approx(16e12, rel=0.02)

    def test_paper_bandwidths(self):
        assert A100.hbm_bw == pytest.approx(1.5e12, rel=0.05)
        assert MI250X.hbm_bw == pytest.approx(1.6e12, rel=0.05)
        assert PVC.hbm_bw == pytest.approx(1.64e12, rel=0.05)

    def test_relative_statements(self):
        # Paper: MI250X GCD > 2x A100 peak FLOPs; PVC ~1.6x A100.
        assert MI250X.peak_fp64 / A100.peak_fp64 > 2.0
        assert PVC.peak_fp64 / A100.peak_fp64 == pytest.approx(1.6, rel=0.05)
        # PVC peak below MI250X GCD's.
        assert PVC.peak_fp64 < MI250X.peak_fp64

    def test_llc_sizes(self):
        assert A100.llc_bytes == 40 * 2**20
        assert MI250X.llc_bytes == 8 * 2**20
        assert PVC.llc_bytes == 208 * 2**20

    def test_machine_balance_ordering(self):
        # MI250X is the most compute-rich per byte.
        assert MI250X.machine_balance > PVC.machine_balance > A100.machine_balance

    def test_lookup(self):
        assert architecture("A100") is A100
        with pytest.raises(SimulationError):
            architecture("H100")


class TestProfiles:
    def test_study_platforms_are_the_papers_columns(self):
        assert STUDY_PLATFORMS == (
            ("A100", "CUDA"),
            ("A100", "SYCL"),
            ("MI250X", "HIP"),
            ("MI250X", "SYCL"),
            ("PVC", "SYCL"),
        )
        assert [p.name for p in study_platforms()] == [
            "A100-CUDA", "A100-SYCL", "MI250X-HIP", "MI250X-SYCL", "PVC-SYCL",
        ]

    def test_hip_on_a100_is_cuda_alias(self):
        # Paper Section 5.1: HIP on Perlmutter wraps the NVIDIA compiler.
        cuda = PROFILES[("A100", "CUDA")]
        hip = PROFILES[("A100", "HIP")]
        assert cuda.variants == hip.variants

    def test_all_profiles_cover_all_variants(self):
        for prof in PROFILES.values():
            for v in VARIANTS:
                assert prof.variant(v) is not None

    def test_sycl_maturity_penalties(self):
        # The naive tiled-array variant is scalarised under SYCL.
        assert PROFILES[("A100", "SYCL")].variant("array").scalarized
        assert not PROFILES[("A100", "CUDA")].variant("array").scalarized

    def test_bricks_reads_less_than_array_codegen_everywhere(self):
        # Paper: bricks codegen's AI beats array codegen's on every
        # platform (plain arrays on MI250X are a separate story — the
        # paper's own Figure 6 puts them near the traffic lower bound
        # while Table 5 puts bricks at ~62%).
        for prof in PROFILES.values():
            bricks = prof.variant("bricks_codegen").read_amp
            arr = prof.variant("array_codegen").read_amp
            assert bricks < arr

    def test_unknown_platform(self):
        with pytest.raises(SimulationError):
            platform("MI250X", "CUDA")

    def test_unknown_variant(self):
        with pytest.raises(SimulationError):
            PROFILES[("A100", "CUDA")].variant("openmp")


class TestVariantProfileValidation:
    def test_bw_frac_bounds(self):
        with pytest.raises(SimulationError):
            VariantProfile(bw_frac=0.0)
        with pytest.raises(SimulationError):
            VariantProfile(bw_frac=1.3)
        VariantProfile(bw_frac=1.1)  # slight super-mixbench is allowed

    def test_amp_bounds(self):
        with pytest.raises(SimulationError):
            VariantProfile(bw_frac=0.9, read_amp=0.5)

    def test_eff_bounds(self):
        with pytest.raises(SimulationError):
            VariantProfile(bw_frac=0.9, fp_eff=1.5)
