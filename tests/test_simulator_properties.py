"""Property-based invariants of the simulator as a whole.

These pin down the *model's* internal consistency (as opposed to its
calibration): scaling laws, orderings, and bounds that must hold for any
stencil/platform/domain combination.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import dsl, gpu

PLATFORMS = [("A100", "CUDA"), ("A100", "SYCL"), ("MI250X", "HIP"),
             ("MI250X", "SYCL"), ("PVC", "SYCL")]
NAMES = ("7pt", "13pt", "19pt", "25pt", "27pt", "125pt")


def sim(name, variant, plat, domain=(512, 512, 512)):
    return gpu.simulate(dsl.by_name(name).build(), variant,
                        gpu.platform(*plat), domain=domain, stencil_name=name)


class TestScalingLaws:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(NAMES),
        plat=st.sampled_from(PLATFORMS),
        factor=st.sampled_from([2, 4]),
    )
    def test_time_superlinear_free_in_volume(self, name, plat, factor):
        """Doubling the domain in one dimension scales time by ~the
        volume ratio (modulo halo surface terms and launch overhead)."""
        base = sim(name, "bricks_codegen", plat, domain=(256, 128, 128))
        big = sim(name, "bricks_codegen", plat,
                  domain=(256 * factor, 128, 128))
        ratio = big.time_s / base.time_s
        assert factor * 0.8 <= ratio <= factor * 1.25

    @settings(max_examples=10, deadline=None)
    @given(name=st.sampled_from(NAMES), plat=st.sampled_from(PLATFORMS))
    def test_flops_exact_in_volume(self, name, plat):
        a = sim(name, "bricks_codegen", plat, domain=(128, 128, 128))
        b = sim(name, "bricks_codegen", plat, domain=(256, 128, 128))
        assert b.flops == 2 * a.flops

    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(NAMES),
        # MI250X is excluded: its 8 MB L2's layer condition is genuinely
        # domain-dependent (the working set is ni * nj * r planes), so AI
        # *should* change with the domain there.
        plat=st.sampled_from([("A100", "CUDA"), ("A100", "SYCL"),
                              ("PVC", "SYCL")]),
    )
    def test_ai_roughly_domain_invariant(self, name, plat):
        small = sim(name, "bricks_codegen", plat, domain=(128, 128, 128))
        big = sim(name, "bricks_codegen", plat, domain=(512, 512, 512))
        # Halo fraction differs slightly; AI should agree within 10%.
        assert big.arithmetic_intensity == pytest.approx(
            small.arithmetic_intensity, rel=0.10
        )

    def test_mi250x_layer_condition_is_domain_dependent(self):
        # The flip side of the invariance above, asserted explicitly.
        small = sim("19pt", "bricks_codegen", ("MI250X", "SYCL"),
                    domain=(128, 128, 128))
        big = sim("19pt", "bricks_codegen", ("MI250X", "SYCL"),
                  domain=(512, 512, 512))
        assert big.arithmetic_intensity < small.arithmetic_intensity


class TestBounds:
    @settings(max_examples=18, deadline=None)
    @given(
        name=st.sampled_from(NAMES),
        plat=st.sampled_from(PLATFORMS),
        variant=st.sampled_from(("array", "array_codegen", "bricks_codegen")),
    )
    def test_ai_never_beats_theoretical(self, name, plat, variant):
        res = sim(name, variant, plat)
        theory = dsl.theoretical_ai(dsl.by_name(name).build())
        assert res.arithmetic_intensity <= theory * (1 + 1e-9)

    @settings(max_examples=18, deadline=None)
    @given(
        name=st.sampled_from(NAMES),
        plat=st.sampled_from(PLATFORMS),
        variant=st.sampled_from(("array", "array_codegen", "bricks_codegen")),
    )
    def test_perf_never_beats_vendor_roofline(self, name, plat, variant):
        res = sim(name, variant, plat)
        arch = res.platform.arch
        roof = min(arch.peak_fp64, res.arithmetic_intensity * arch.hbm_bw)
        assert res.gflops * 1e9 <= roof * (1 + 1e-9)

    @settings(max_examples=12, deadline=None)
    @given(name=st.sampled_from(NAMES), plat=st.sampled_from(PLATFORMS))
    def test_timing_components_nonnegative(self, name, plat):
        t = sim(name, "bricks_codegen", plat).timing
        for v in (t.t_hbm, t.t_l1, t.t_fp, t.t_shuffle, t.t_issue):
            assert v >= 0.0
        assert 0 < t.occupancy <= 1.0


class TestOrderings:
    @settings(max_examples=12, deadline=None)
    @given(name=st.sampled_from(NAMES), plat=st.sampled_from(PLATFORMS))
    def test_codegen_never_slower_than_naive(self, name, plat):
        naive = sim(name, "array", plat)
        codegen = sim(name, "array_codegen", plat)
        # On MI250X-HIP the array-codegen traffic anomaly makes it the
        # one documented exception (the paper's own data shows it too).
        if plat == ("MI250X", "HIP"):
            return
        assert codegen.time_s <= naive.time_s * 1.001

    @settings(max_examples=12, deadline=None)
    @given(name=st.sampled_from(NAMES), plat=st.sampled_from(PLATFORMS))
    def test_l1_ordering(self, name, plat):
        naive = sim(name, "array", plat)
        bricks = sim(name, "bricks_codegen", plat)
        assert naive.traffic.l1_bytes > bricks.traffic.l1_bytes
