"""Persistent result caches: the on-disk study cache and the codegen memo."""

import pickle

import pytest

from repro import cli, harness, obs
from repro.bricks.layout import BrickDims
from repro.codegen import CodegenOptions, clear_codegen_memo, generate
from repro.dsl.shapes import by_name
from repro.harness import serialization

SMALL = harness.ExperimentConfig(stencils=("7pt",), domain=(64, 64, 64))


@pytest.fixture
def registry():
    prev = obs.get_registry()
    reg = obs.set_registry(obs.MetricsRegistry())
    yield reg
    obs.set_registry(prev)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        study = harness.run_study(SMALL)
        path = serialization.save_study_cache(study, str(tmp_path))
        assert path == serialization.study_cache_path(str(tmp_path), SMALL)
        loaded = serialization.load_study_cache(SMALL, str(tmp_path))
        assert loaded is not None
        assert loaded.config == SMALL
        assert loaded.results == study.results

    def test_key_depends_on_config(self):
        other = harness.ExperimentConfig(stencils=("13pt",), domain=(64, 64, 64))
        assert serialization.study_cache_key(SMALL) != serialization.study_cache_key(other)

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert serialization.load_study_cache(SMALL, str(tmp_path)) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        study = harness.run_study(SMALL)
        path = serialization.save_study_cache(study, str(tmp_path))
        with open(path, "rb") as f:
            blob = pickle.load(f)
        blob["schema_version"] = serialization.SCHEMA_VERSION + 1
        with open(path, "wb") as f:
            pickle.dump(blob, f)
        assert serialization.load_study_cache(SMALL, str(tmp_path)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        path = serialization.study_cache_path(str(tmp_path), SMALL)
        tmp_path.mkdir(exist_ok=True)
        with open(path, "wb") as f:
            f.write(b"not a pickle at all")
        assert serialization.load_study_cache(SMALL, str(tmp_path)) is None

    def test_cached_study_warm_disk_skips_simulation(self, tmp_path, registry):
        harness.clear_study_cache()
        try:
            harness.cached_study(SMALL, cache_dir=str(tmp_path))
            assert registry.counter("simulate.calls").value == 15
            assert registry.counter("study_disk_cache.misses").value == 1
            # A fresh process has no memo; only the disk entry remains.
            harness.clear_study_cache()
            reg = obs.set_registry(obs.MetricsRegistry())
            warm = harness.cached_study(SMALL, cache_dir=str(tmp_path))
            assert reg.counter("simulate.calls").value == 0
            assert reg.counter("study_disk_cache.hits").value == 1
            assert len(warm) == 15
        finally:
            harness.clear_study_cache()

    def test_no_cache_dir_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.delenv(serialization.CACHE_DIR_ENV, raising=False)
        harness.clear_study_cache()
        try:
            harness.cached_study(SMALL)
        finally:
            harness.clear_study_cache()
        assert list(tmp_path.iterdir()) == []

    def test_env_var_supplies_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(serialization.CACHE_DIR_ENV, str(tmp_path))
        harness.clear_study_cache()
        try:
            harness.cached_study(SMALL)
        finally:
            harness.clear_study_cache()
        assert list(tmp_path.glob("study-*.pkl"))


class TestCliWarmCache:
    def test_second_table_invocation_simulates_nothing(self, tmp_path, capsys):
        """Acceptance: warm --cache-dir rerun performs zero simulate calls."""
        prev = obs.get_registry()
        harness.clear_study_cache()
        try:
            obs.set_registry(obs.MetricsRegistry())
            assert cli.main(["table", "3", "--cache-dir", str(tmp_path)]) == 0
            first = capsys.readouterr().out
            harness.clear_study_cache()  # second CLI run = fresh process
            reg = obs.set_registry(obs.MetricsRegistry())
            assert cli.main(["table", "3", "--cache-dir", str(tmp_path)]) == 0
            second = capsys.readouterr().out
            assert reg.counter("simulate.calls").value == 0
            assert reg.counter("study_disk_cache.hits").value == 1
            assert second == first  # identical render from the cached sweep
        finally:
            obs.set_registry(prev)
            harness.clear_study_cache()


class TestCodegenMemo:
    def setup_method(self):
        clear_codegen_memo()

    def teardown_method(self):
        clear_codegen_memo()

    def test_hit_returns_same_program(self, registry):
        stencil = by_name("13pt").build()
        dims = BrickDims((32, 4, 4))
        opts = CodegenOptions(32, "auto")
        first = generate(stencil, dims, opts)
        second = generate(stencil, dims, opts)
        assert second is first
        assert registry.counter("codegen.memo_misses").value == 1
        assert registry.counter("codegen.memo_hits").value == 1

    def test_distinct_keys_do_not_collide(self):
        stencil = by_name("13pt").build()
        opts = CodegenOptions(32, "auto")
        a = generate(stencil, BrickDims((32, 4, 4)), opts)
        b = generate(stencil, BrickDims((32, 8, 4)), opts)
        c = generate(by_name("7pt").build(), BrickDims((32, 4, 4)), opts)
        assert a is not b and a is not c

    def test_clear_resets(self, registry):
        stencil = by_name("7pt").build()
        dims = BrickDims((32, 4, 4))
        opts = CodegenOptions(32, "auto")
        generate(stencil, dims, opts)
        clear_codegen_memo()
        generate(stencil, dims, opts)
        assert registry.counter("codegen.memo_misses").value == 2
        assert registry.counter("codegen.memo_hits").value == 0

    def test_memo_attribute_on_span(self):
        prev = obs.get_tracer()
        tracer = obs.set_tracer(obs.Tracer(enabled=True))
        try:
            stencil = by_name("7pt").build()
            dims = BrickDims((32, 4, 4))
            opts = CodegenOptions(32, "auto")
            generate(stencil, dims, opts)
            generate(stencil, dims, opts)
        finally:
            obs.set_tracer(prev)
        spans = tracer.find("codegen.generate")
        assert [s.attrs["memo"] for s in spans] == ["miss", "hit"]
