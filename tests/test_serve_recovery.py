"""Crash-recovery drills against the real server: kill -9 and SIGTERM.

These boot ``repro-stencil serve`` as a subprocess (the same way CI's
service smoke does) so the recovery path is exercised end-to-end: real
journal file, real checkpoint files, a real ``SIGKILL`` with no chance
to flush anything, and a cold restart on the same state.
"""

import glob
import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro import harness
from repro.serve import JobJournal, ServeClient

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: 15 matrix points (3 stencils x 1 variant x 5 platforms): enough that
#: a SIGKILL lands mid-sweep once the first checkpoint flush is visible.
RECOVERY_DOC = {
    "stencils": ["7pt", "13pt", "27pt"],
    "variants": ["array"],
    "domain": [64, 64, 64],
}

#: 1-point blocker for the drain drill; ``sleep_s`` keeps it running
#: (and non-clean, so it never dedups) while more work queues behind it.
BLOCKER_DOC = {
    "stencils": ["7pt"], "variants": ["array"], "domain": [64, 64, 64],
    "platforms": ["A100-CUDA"],
}

QUEUED_DOCS = (
    {"stencils": ["13pt"], "variants": ["array"], "domain": [64, 64, 64]},
    {"stencils": ["27pt"], "variants": ["array"], "domain": [64, 64, 64]},
)


def boot(*extra):
    """Start the CLI server on a free port; returns (proc, client)."""
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--workers", "1", *extra,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_JOBS", None)
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO_ROOT,
    )
    ready = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", ready)
    if not match:
        proc.kill()
        raise RuntimeError(f"server never became ready: {ready!r}")
    client = ServeClient(
        f"http://127.0.0.1:{match.group(1)}", timeout_s=60.0
    )
    return proc, client


def sigterm(proc, timeout_s=60):
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=timeout_s)
    return proc.returncode, output


@pytest.fixture(scope="module")
def expected_bytes():
    """Direct in-process reference result for RECOVERY_DOC."""
    study = harness.run_study(harness.config_from_dict(RECOVERY_DOC))
    return json.dumps(harness.study_to_dict(study), indent=1).encode()


class TestKillDashNine:
    def attempt(self, base, expected):
        """One kill -9 drill; returns (ok, why)."""
        journal = os.path.join(base, "journal.db")
        cache = os.path.join(base, "cache")
        os.makedirs(base, exist_ok=True)
        proc, client = boot(
            "--journal", journal, "--cache-dir", cache,
            "--checkpoint-every", "1",
        )
        job = client.submit(RECOVERY_DOC)
        job_id = job["job_id"]
        # SIGKILL the instant the first checkpoint flush hits the disk:
        # the sweep is provably mid-flight with completed points saved.
        deadline = time.monotonic() + 60.0
        killed = False
        while time.monotonic() < deadline:
            if glob.glob(os.path.join(cache, "*.ckpt.pkl")):
                proc.kill()  # SIGKILL: no drain, no journal flush
                proc.wait(timeout=30)
                killed = True
                break
            time.sleep(0.002)
        if not killed:
            sigterm(proc)
            return False, "no checkpoint ever appeared"

        # Cold restart on the same journal + cache: the job must replay,
        # resume from the checkpoint, and finish byte-identical.
        proc2, client2 = boot("--journal", journal, "--cache-dir", cache)
        try:
            final = client2.wait(job_id, timeout_s=120.0)
            if final["state"] != "done":
                return False, f"recovered job ended {final}"
            body = client2.result_bytes(job_id)
            metrics = client2.metrics()
        finally:
            code, output = sigterm(proc2)
        if code != 0:
            return False, f"restarted server exited {code}: {output[-300:]}"
        if body != expected:
            return False, "recovered result is not byte-identical"
        if metrics.get("serve.recovery.replayed_jobs", 0) < 1:
            return False, f"no replayed jobs counted: {metrics}"
        resumed = metrics.get("study.resumed_points", 0)
        if resumed < 1:
            # The sweep outran the kill; nothing was left to resume.
            return False, "sweep finished before the SIGKILL landed"
        return True, f"resumed {resumed} checkpointed points"

    def test_kill9_recovers_byte_identical(self, tmp_path, expected_bytes):
        whys = []
        for attempt in range(3):
            ok, why = self.attempt(
                str(tmp_path / f"attempt{attempt}"), expected_bytes
            )
            whys.append(why)
            if ok:
                return
            # Only a racy miss (too-fast sweep) deserves another try.
            if "before the SIGKILL" not in why and "no checkpoint" not in why:
                break
        pytest.fail(f"kill -9 drill never recovered: {whys}")


class TestSigtermDrain:
    def test_drain_finishes_running_and_journals_queued(self, tmp_path):
        journal = str(tmp_path / "journal.db")
        proc, client = boot("--journal", journal, "--drain-timeout", "30")
        blocker = client.submit(BLOCKER_DOC, {"sleep_s": 2.0})
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(blocker["job_id"])["state"] == "running":
                break
            time.sleep(0.02)
        else:
            sigterm(proc)
            pytest.fail("blocker never started running")
        queued = [client.submit(doc) for doc in QUEUED_DOCS]
        assert all(j["state"] == "queued" for j in queued)

        code, output = sigterm(proc)
        assert code == 0, f"drain exit {code}: {output[-300:]}"

        j = JobJournal(journal)
        try:
            states = {r.job_id: r.state for r in j.replay()}
        finally:
            j.close()
        # The running blocker got its drain window and finished; the
        # queued jobs were left journaled for the next boot.
        assert states[blocker["job_id"]] == "done"
        for job in queued:
            assert states[job["job_id"]] == "queued"

        # Full circle: a restart on the same journal completes them.
        proc2, client2 = boot("--journal", journal)
        try:
            for job in queued:
                final = client2.wait(job["job_id"], timeout_s=120.0)
                assert final["state"] == "done"
        finally:
            code, _ = sigterm(proc2)
        assert code == 0
