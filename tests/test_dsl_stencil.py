"""Unit tests for DSL lowering and the canonical Stencil form."""

import pytest

from repro.dsl import ConstRef, Grid, Index, cube, from_weights, star
from repro.errors import DSLError

i, j, k = Index(0), Index(1), Index(2)


def paper_figure1_stencil():
    """The exact DSL program from Figure 1 of the paper."""
    inp = Grid("in", 3)
    out = Grid("out", 3)
    a0, a1, a2 = ConstRef("MPI_B0"), ConstRef("MPI_B1"), ConstRef("MPI_B2")
    calc = (
        a0 * inp(i, j, k)
        + a1 * inp(i + 1, j, k)
        + a1 * inp(i - 1, j, k)
        + a1 * inp(i, j + 1, k)
        + a1 * inp(i, j - 1, k)
        + a1 * inp(i, j, k + 1)
        + a1 * inp(i, j, k - 1)
        + a2 * inp(i + 2, j, k)
        + a2 * inp(i - 2, j, k)
        + a2 * inp(i, j + 2, k)
        + a2 * inp(i, j - 2, k)
        + a2 * inp(i, j, k + 2)
        + a2 * inp(i, j, k - 2)
    )
    return out(i, j, k).assign(calc)


class TestLowering:
    def test_figure1_is_13pt_star(self):
        s = paper_figure1_stencil()
        assert s.points == 13
        assert s.radius == 2
        assert s.shape_class() == "star"
        assert s.unique_coefficients() == 3
        assert s.input == "in" and s.output == "out"

    def test_figure1_matches_star_factory_geometry(self):
        assert paper_figure1_stencil().offsets() == star(2).offsets()

    def test_repeated_tap_coefficients_merge(self):
        inp, out = Grid("in", 3), Grid("out", 3)
        a = ConstRef("a")
        s = out(i, j, k).assign(a * inp(i, j, k) + a * inp(i, j, k))
        coeff = s.taps[(0, 0, 0)]
        assert coeff.evaluate({"a": 3.0}) == pytest.approx(6.0)

    def test_cancelling_taps_are_dropped(self):
        inp, out = Grid("in", 3), Grid("out", 3)
        s = out(i, j, k).assign(inp(i + 1, j, k) - inp(i + 1, j, k) + inp(i, j, k))
        assert s.points == 1

    def test_subtraction_and_negation(self):
        inp, out = Grid("in", 3), Grid("out", 3)
        s = out(i, j, k).assign(inp(i, j, k) - 2.0 * inp(i + 1, j, k))
        assert s.weights()[(1, 0, 0)] == pytest.approx(-2.0)
        s2 = out(i, j, k).assign(-inp(i, j, k))
        assert s2.weights()[(0, 0, 0)] == pytest.approx(-1.0)

    def test_nonlinear_rejected(self):
        inp, out = Grid("in", 3), Grid("out", 3)
        with pytest.raises(DSLError, match="non-linear"):
            out(i, j, k).assign(inp(i, j, k) * inp(i + 1, j, k))

    def test_in_place_rejected(self):
        g = Grid("g", 3)
        with pytest.raises(DSLError, match="out-of-place"):
            g(i, j, k).assign(g(i + 1, j, k))

    def test_two_input_grids_rejected(self):
        a, b, out = Grid("a", 3), Grid("b", 3), Grid("out", 3)
        with pytest.raises(DSLError, match="exactly one input grid"):
            out(i, j, k).assign(a(i, j, k) + b(i, j, k))

    def test_shifted_target_rejected(self):
        inp, out = Grid("in", 3), Grid("out", 3)
        with pytest.raises(DSLError, match="centre"):
            out(i + 1, j, k).assign(inp(i, j, k))

    def test_additive_constant_rejected(self):
        inp, out = Grid("in", 3), Grid("out", 3)
        with pytest.raises(DSLError, match="additive constants"):
            out(i, j, k).assign(inp(i, j, k) + 1.0)

    def test_empty_expression_rejected(self):
        out = Grid("out", 3)
        with pytest.raises(DSLError):
            out(i, j, k).assign(0.0)

    def test_wrong_arity_rejected(self):
        inp = Grid("in", 3)
        with pytest.raises(DSLError, match="3 dimensions"):
            inp(i, j)

    def test_duplicate_dimension_rejected(self):
        inp = Grid("in", 3)
        with pytest.raises(DSLError, match="exactly once"):
            inp(i, i, k)

    def test_permuted_subscripts_allowed(self):
        inp = Grid("in", 3)
        ref = inp(k + 2, j, i)  # any order: offsets land on their dims
        assert ref.offsets == (0, 0, 2)


class TestStencilProperties:
    def test_star_shape_class(self):
        for r in (1, 2, 3, 4):
            assert star(r).shape_class() == "star"

    def test_cube_shape_class(self):
        for r in (1, 2):
            assert cube(r).shape_class() == "cube"

    def test_general_shape_class(self):
        s = from_weights({(0, 0, 0): 1.0, (1, 1, 0): 0.5})
        assert s.shape_class() == "general"

    def test_incomplete_star_is_general(self):
        # Missing one axis tap: not a full star.
        s = from_weights({(0, 0, 0): 1.0, (1, 0, 0): 0.5, (-1, 0, 0): 0.5,
                          (0, 1, 0): 0.5, (0, -1, 0): 0.5, (0, 0, 1): 0.5})
        assert s.shape_class() == "general"

    def test_radius(self):
        assert star(3).radius == 3
        assert cube(2).radius == 2

    def test_flops_minimal_formula(self):
        # points + unique_coefficients - 1 (see Table 4 derivation).
        assert star(1).flops_per_point() == 8
        assert star(2).flops_per_point() == 15
        assert star(3).flops_per_point() == 22
        assert star(4).flops_per_point() == 29
        assert cube(1).flops_per_point() == 30
        assert cube(2).flops_per_point() == 134

    def test_flops_naive(self):
        assert star(1).flops_per_point(minimal=False) == 13
        assert cube(1).flops_per_point(minimal=False) == 53

    def test_coefficient_groups_partition_taps(self):
        s = cube(2)
        groups = s.coefficient_groups()
        sizes = sorted(len(v) for v in groups.values())
        assert sum(sizes) == 125
        assert len(groups) == 10
        # Orbit sizes for radius 2: centre=1, and octahedral orbit sizes.
        assert sizes[0] == 1 and sizes[-1] == 24

    def test_weights_require_bindings(self):
        with pytest.raises(DSLError, match="no value bound"):
            star(1).weights({})

    def test_weights_with_bindings(self):
        w = star(1).weights({"B0": -6.0, "B1": 1.0})
        assert w[(0, 0, 0)] == -6.0
        assert w[(1, 0, 0)] == 1.0
        assert len(w) == 7

    def test_from_weights_drops_zeros(self):
        s = from_weights({(0, 0, 0): 1.0, (1, 0, 0): 0.0})
        assert s.points == 1

    def test_description(self):
        assert star(2).description() == "star(r=2, 13pt)"
