"""Integration tests: executable kernels vs the reference, all variants."""

import numpy as np
import pytest

from repro import kernels
from repro.bricks import BrickDims
from repro.dsl import by_name, catalog
from repro.errors import SimulationError
from repro.gpu import platform
from repro.kernels.array_kernels import tile_blocks
from repro.reference import apply_interior, random_field

PLAT = platform("A100", "CUDA")


def reference(stencil, dense, bindings):
    return apply_interior(stencil, dense, bindings)


class TestTileBlocks:
    def test_shapes(self):
        dense = random_field((12, 12, 36))
        blocks = tile_blocks(dense, (4, 4, 16), radius=2)
        assert blocks.shape == (2 * 2 * 2, 8, 8, 20)

    def test_contents_match_windows(self):
        dense = random_field((12, 12, 36), seed=7)
        blocks = tile_blocks(dense, (4, 4, 16), radius=2)
        assert np.array_equal(blocks[0], dense[0:8, 0:8, 0:20])
        assert np.array_equal(blocks[-1], dense[4:12, 4:12, 16:36])

    def test_errors(self):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            tile_blocks(random_field((4, 4, 4)), (4, 4, 16), radius=2)
        with pytest.raises(LayoutError):
            tile_blocks(random_field((13, 12, 36)), (4, 4, 16), radius=2)


class TestRunVariants:
    @pytest.mark.parametrize("variant", kernels.VARIANTS)
    @pytest.mark.parametrize("name", sorted(catalog()))
    def test_matches_reference(self, variant, name):
        case = by_name(name)
        s = case.build()
        b = case.default_bindings()
        r = s.radius
        domain = (64, 8, 8)  # (ni, nj, nk)
        dense = random_field((8 + 2 * r, 8 + 2 * r, 64 + 2 * r), seed=11)
        kr = kernels.run(variant, s, PLAT, domain=domain, bindings=b,
                         input_dense=dense, stencil_name=name)
        np.testing.assert_allclose(
            kr.output, reference(s, dense, b), rtol=1e-12, atol=1e-12
        )
        assert kr.result.stencil_name == name
        assert kr.result.variant == variant

    def test_variants_agree_with_each_other(self):
        case = by_name("27pt")
        s, b = case.build(), case.default_bindings()
        dense = random_field((10, 10, 66), seed=3)
        outs = [
            kernels.run(v, s, PLAT, domain=(64, 8, 8), bindings=b,
                        input_dense=dense).output
            for v in kernels.VARIANTS
        ]
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(outs[0], outs[2], rtol=1e-12, atol=1e-12)

    def test_other_platforms_tile_shapes(self):
        case = by_name("13pt")
        s, b = case.build(), case.default_bindings()
        for plat_args, ni in ((("MI250X", "HIP"), 128), (("PVC", "SYCL"), 32)):
            plat = platform(*plat_args)
            r = s.radius
            dense = random_field((8 + 2 * r, 8 + 2 * r, ni + 2 * r), seed=5)
            kr = kernels.run("bricks_codegen", s, plat, domain=(ni, 8, 8),
                             bindings=b, input_dense=dense)
            np.testing.assert_allclose(
                kr.output, reference(s, dense, b), rtol=1e-12, atol=1e-12
            )

    def test_custom_dims(self):
        case = by_name("7pt")
        s, b = case.build(), case.default_bindings()
        dims = BrickDims((16, 8, 8))
        dense = random_field((18, 18, 34), seed=2)
        kr = kernels.run("bricks_codegen", s, PLAT, domain=(32, 16, 16),
                         bindings=b, input_dense=dense, dims=dims)
        np.testing.assert_allclose(
            kr.output, reference(s, dense, b), rtol=1e-12, atol=1e-12
        )

    def test_default_random_input(self):
        case = by_name("7pt")
        kr = kernels.run("array", case.build(), PLAT, domain=(32, 8, 8),
                         bindings=case.default_bindings())
        assert kr.output.shape == (8, 8, 32)
        assert np.isfinite(kr.output).all()

    def test_bad_variant(self):
        with pytest.raises(SimulationError):
            kernels.run("kokkos", by_name("7pt").build(), PLAT)

    def test_bad_input_shape(self):
        case = by_name("7pt")
        with pytest.raises(SimulationError, match="ghosted shape"):
            kernels.run("array", case.build(), PLAT, domain=(32, 8, 8),
                        bindings=case.default_bindings(),
                        input_dense=np.zeros((8, 8, 32)))
