"""Integration tests for the experiment harness (tables + figures)."""

import pytest

from repro import harness
from repro.dsl import theoretical_ai, by_name
from repro.errors import MetricError


@pytest.fixture(scope="module")
def study():
    # A reduced domain keeps the suite fast; ratios are domain-invariant
    # for everything asserted here except absolute byte counts.
    return harness.run_study(harness.ExperimentConfig(domain=(256, 256, 256)))


@pytest.fixture(scope="module")
def full_study():
    return harness.run_study()  # the paper's 512^3


class TestStudy:
    def test_matrix_size(self, study):
        # 6 stencils x 5 platforms x 3 variants.
        assert len(study) == 90

    def test_lookup(self, study):
        r = study.get("13pt", "A100-CUDA", "bricks_codegen")
        assert r.stencil_name == "13pt"
        with pytest.raises(MetricError):
            study.get("9pt", "A100-CUDA", "array")

    def test_for_platform(self, study):
        rs = study.for_platform("PVC-SYCL")
        assert len(rs) == 18
        assert all(r.platform.name == "PVC-SYCL" for r in rs)

    def test_for_variant(self, study):
        rs = study.for_variant("array")
        assert len(rs) == 30


class TestTables:
    def test_table2_rows(self):
        rows = harness.table2()
        assert [r["points"] for r in rows] == [7, 13, 19, 25, 27, 125]
        assert [r["unique_coefficients"] for r in rows] == [2, 3, 4, 5, 4, 10]
        text = harness.render_table2()
        assert "Unique Coefficients" in text

    def test_table4_values(self):
        rows = harness.table4()
        by_points = {r["points"]: r["theoretical_ai"] for r in rows}
        assert by_points[7] == pytest.approx(0.5)
        assert by_points[125] == pytest.approx(8.375)
        assert "Theoretical AI" in harness.render_table4()

    def test_table3_matches_paper_band(self, full_study):
        t3 = harness.table3(full_study)
        # Paper: bricks codegen attains P > 60% overall... our model's
        # aggregate lands at ~62% vs the paper's 61%.
        assert 0.55 <= t3.overall <= 0.68
        # 125pt is the worst row (paper: 38%).
        ps = {name: p for name, (effs, p) in t3.rows.items()}
        assert min(ps, key=ps.get) == "125pt"
        # 7pt the best (paper: 77%).
        assert max(ps, key=ps.get) == "7pt"

    def test_table5_matches_paper_band(self, full_study):
        t5 = harness.table5(full_study)
        # Paper: nearly 70% overall (68%).
        assert 0.62 <= t5.overall <= 0.74
        # Paper conclusion: data movement within ~1.5x of the infinite-
        # cache bound on average -> per-stencil P around 2/3.
        for name, (effs, p) in t5.rows.items():
            assert p > 0.5

    def test_tables_render(self, full_study):
        text3 = harness.table3(full_study).render()
        assert "A100-CUDA" in text3 and "overall" in text3
        text5 = harness.table5(full_study).render()
        assert "theoretical AI" in text5


class TestFigures:
    def test_fig3_panels(self, full_study):
        panels = harness.fig3(full_study)
        assert [p.platform for p in panels] == full_study.platform_names()
        for panel in panels:
            for variant, pts in panel.series.items():
                assert len(pts) == 6
                for _, ai, gf in pts:
                    # No kernel may beat its Roofline.
                    assert gf * 1e9 <= panel.roofline.attainable(ai) * 1.02
            assert "Figure 3" in panel.render()

    def test_fig3_bricks_rightmost(self, full_study):
        # Bricks codegen has the highest AI per stencil per panel
        # (vs array codegen; the paper's layout comparison).
        for panel in harness.fig3(full_study):
            arr = dict((s, ai) for s, ai, _ in panel.series["array_codegen"])
            bricks = dict((s, ai) for s, ai, _ in panel.series["bricks_codegen"])
            for name in arr:
                assert bricks[name] > arr[name]

    def test_fig4_ordering(self, full_study):
        data = harness.fig4(full_study)
        for pname, variants in data.items():
            naive = dict(variants["array"])
            codegen = dict(variants["bricks_codegen"])
            for name in naive:
                assert naive[name] > codegen[name]
        assert "Figure 4" in harness.render_fig4(full_study)

    def test_fig5_fig6(self, full_study):
        perf5, bytes5 = harness.fig5(full_study)
        assert perf5.y_label == "CUDA" and perf5.x_label == "SYCL"
        assert len(perf5.points) == 18
        perf6, bytes6 = harness.fig6(full_study)
        assert perf6.y_label == "HIP"
        # Paper Figure 6: "a more balanced scenario" on AMD — codegen
        # kernels sit closer to the diagonal than on NVIDIA.
        assert perf6.diagonal_distance("bricks_codegen") < perf5.diagonal_distance(
            "array"
        )
        text = harness.render_correlation(bytes6)
        assert "lower bound" in text

    def test_fig7(self, full_study):
        pts = harness.fig7(full_study)
        assert len(pts) == 30
        # Paper: bricks codegen attained over 50% of Roofline and
        # theoretical AI overall -> most points in the <=4x bands.
        good = [p for p in pts if p.potential_speedup <= 4.5]
        assert len(good) >= len(pts) * 0.8
        assert "potential" in harness.render_fig7(full_study)


class TestReporting:
    def test_csv(self, study):
        csv_text = harness.to_csv(study)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 91  # header + 90 rows
        assert lines[0].startswith("stencil,platform,variant")

    def test_write_csv(self, study, tmp_path):
        path = tmp_path / "study.csv"
        harness.write_csv(study, str(path))
        assert path.read_text().count("\n") == 91

    def test_summary(self, study):
        text = harness.summary(study)
        assert "90 kernel runs" in text

    def test_theoretical_ai_against_catalog(self):
        for name in ("7pt", "125pt"):
            assert theoretical_ai(by_name(name).build()) > 0
