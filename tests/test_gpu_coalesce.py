"""Unit tests for the memory-coalescing arithmetic."""

import pytest

from repro.errors import SimulationError
from repro.gpu import coalesce


class TestSpans:
    def test_aligned_exact(self):
        assert coalesce.spans(0, 128, 128) == 1

    def test_crossing(self):
        assert coalesce.spans(64, 128, 128) == 2

    def test_one_byte(self):
        assert coalesce.spans(127, 1, 128) == 1
        assert coalesce.spans(127, 2, 128) == 2

    def test_invalid(self):
        with pytest.raises(SimulationError):
            coalesce.spans(0, 0, 128)
        with pytest.raises(SimulationError):
            coalesce.spans(0, 8, 0)


class TestContiguous:
    def test_warp_aligned_sectors(self):
        # 32 lanes x 8 B = 256 B = 8 sectors of 32 B.
        assert coalesce.contiguous_sectors(0, 32) == 8

    def test_warp_misaligned_sectors(self):
        # Offset by one element: crosses into a 9th sector.
        assert coalesce.contiguous_sectors(8, 32) == 9

    def test_lines(self):
        assert coalesce.contiguous_lines(0, 32) == 2  # 256 B / 128 B
        assert coalesce.contiguous_lines(8, 32) == 3

    def test_wave64(self):
        assert coalesce.contiguous_sectors(0, 64) == 16


class TestStrided:
    def test_unit_stride_equals_contiguous(self):
        assert coalesce.strided_sectors(32, 8) == coalesce.contiguous_sectors(0, 32)

    def test_large_stride_scalarizes(self):
        assert coalesce.strided_sectors(32, 512) == 32

    def test_stride_exactly_sector(self):
        assert coalesce.strided_sectors(32, 32) == 32

    def test_half_sector_stride(self):
        assert coalesce.strided_sectors(32, 16) == 16

    def test_stride_below_element_rejected(self):
        with pytest.raises(SimulationError):
            coalesce.strided_sectors(32, 4)

    def test_scalarized(self):
        assert coalesce.scalarized_sectors(64) == 64
