#!/usr/bin/env python
"""Calibration harness: model output vs. the paper's published numbers.

Run after touching any profile parameter.  Prints Table 3 (fraction of
Roofline), Table 5 (fraction of theoretical AI) and the headline codegen
speed-up ratios, side by side with the paper's values.
"""

from __future__ import annotations

from repro import dsl, gpu

STENCILS = ("7pt", "13pt", "19pt", "25pt", "27pt", "125pt")

PAPER_TABLE3 = {
    # stencil: (A100 CUDA, A100 SYCL, MI250X HIP, MI250X SYCL, PVC SYCL)
    "7pt": (95, 84, 66, 68, 77),
    "13pt": (92, 79, 66, 67, 67),
    "19pt": (85, 87, 65, 66, 53),
    "25pt": (69, 79, 66, 64, 47),
    "27pt": (82, 60, 66, 67, 61),
    "125pt": (47, 39, 42, 63, 23),
}

PAPER_TABLE5 = {
    "7pt": (92, 49, 62, 59, 93),
    "13pt": (92, 88, 66, 48, 92),
    "19pt": (91, 87, 60, 43, 91),
    "25pt": (88, 81, 56, 41, 91),
    "27pt": (93, 59, 67, 59, 92),
    "125pt": (92, 89, 64, 38, 92),
}


def roofline_fraction(res: gpu.SimulationResult) -> float:
    plat = res.platform
    bw = plat.arch.hbm_bw * plat.profile.mixbench_bw_frac
    pk = plat.arch.peak_fp64 * plat.profile.mixbench_fp_frac
    ceiling = min(pk, res.arithmetic_intensity * bw)
    return res.gflops * 1e9 / ceiling


def theoretical_ai_fraction(res: gpu.SimulationResult, stencil) -> float:
    return res.arithmetic_intensity / dsl.theoretical_ai(stencil)


def main() -> None:
    plats = gpu.study_platforms()
    results = {}
    for name in STENCILS:
        s = dsl.by_name(name).build()
        for plat in plats:
            for variant in gpu.VARIANTS:
                results[(name, plat.name, variant)] = gpu.simulate(
                    s, variant, plat, stencil_name=name
                )

    print("=== Table 3: fraction of Roofline, bricks codegen (model/paper) ===")
    cols = [p.name for p in plats]
    print(f"{'':>7}" + "".join(f"{c:>18}" for c in cols))
    for name in STENCILS:
        s = dsl.by_name(name).build()
        row = []
        for p, paper in zip(plats, PAPER_TABLE3[name]):
            frac = roofline_fraction(results[(name, p.name, "bricks_codegen")])
            row.append(f"{100*frac:5.0f}/{paper:<3d}")
        print(f"{name:>7}" + "".join(f"{c:>18}" for c in row))

    print("\n=== Table 5: fraction of theoretical AI, bricks codegen (model/paper) ===")
    for name in STENCILS:
        s = dsl.by_name(name).build()
        row = []
        for p, paper in zip(plats, PAPER_TABLE5[name]):
            frac = theoretical_ai_fraction(results[(name, p.name, "bricks_codegen")], s)
            row.append(f"{100*frac:5.0f}/{paper:<3d}")
        print(f"{name:>7}" + "".join(f"{c:>18}" for c in row))

    print("\n=== Codegen-isolation speed-ups (array time vs array_codegen time) ===")
    for p in plats:
        star_gain = max(
            results[(n, p.name, "array")].time_s
            / results[(n, p.name, "array_codegen")].time_s
            for n in ("7pt", "13pt", "19pt", "25pt")
        )
        cube_gain = max(
            results[(n, p.name, "array")].time_s
            / results[(n, p.name, "array_codegen")].time_s
            for n in ("27pt", "125pt")
        )
        print(f"  {p.name:>12}: star {star_gain:5.1f}x  cube {cube_gain:5.1f}x")

    print("\n=== Headline codegen speed-ups (bricks_codegen time vs array time) ===")
    targets = {
        "A100-CUDA": "1.3x star / 2x cube",
        "A100-SYCL": "13x star / 26x cube",
        "MI250X-HIP": "1.3x star / 3x cube",
        "MI250X-SYCL": "3x star / 9x cube",
        "PVC-SYCL": "3x star / 5x cube",
    }
    for p in plats:
        star_gain = max(
            results[(n, p.name, "array")].time_s
            / results[(n, p.name, "bricks_codegen")].time_s
            for n in ("7pt", "13pt", "19pt", "25pt")
        )
        cube_gain = max(
            results[(n, p.name, "array")].time_s
            / results[(n, p.name, "bricks_codegen")].time_s
            for n in ("27pt", "125pt")
        )
        print(
            f"  {p.name:>12}: star {star_gain:5.1f}x  cube {cube_gain:5.1f}x"
            f"   (paper: {targets[p.name]})"
        )

    print("\n=== Bytes moved, A100 (Figure 5 right; minimum 2.15 GB) ===")
    for variant in gpu.VARIANTS:
        cu = results[("13pt", "A100-CUDA", variant)].hbm_gbytes
        sy = results[("13pt", "A100-SYCL", variant)].hbm_gbytes
        print(f"  {variant:>15}: CUDA {cu:5.2f} GB   SYCL {sy:5.2f} GB")
    print("\n=== Bytes moved, MI250X (Figure 6 right) ===")
    for variant in gpu.VARIANTS:
        hip = results[("13pt", "MI250X-HIP", variant)].hbm_gbytes
        sy = results[("13pt", "MI250X-SYCL", variant)].hbm_gbytes
        print(f"  {variant:>15}: HIP  {hip:5.2f} GB   SYCL {sy:5.2f} GB")

    # Aggregate Pennycook-style harmonic means over the 5 platforms.
    def pennycook(vals):
        return len(vals) / sum(1.0 / v for v in vals)

    p3 = []
    p5 = []
    for name in STENCILS:
        s = dsl.by_name(name).build()
        f3 = [roofline_fraction(results[(name, p.name, "bricks_codegen")]) for p in plats]
        f5 = [
            theoretical_ai_fraction(results[(name, p.name, "bricks_codegen")], s)
            for p in plats
        ]
        p3.append(pennycook(f3))
        p5.append(pennycook(f5))
    overall3 = pennycook(p3)
    overall5 = pennycook(p5)
    print(f"\nOverall P (Table 3): {100*overall3:.0f}%  (paper: 61%)")
    print(f"Overall P (Table 5): {100*overall5:.0f}%  (paper: 68%)")


if __name__ == "__main__":
    main()
