#!/usr/bin/env python
"""Generate EXPERIMENTS.md: paper vs measured for every table and figure.

Thin wrapper over :func:`repro.results.report.experiments_md` — the same
renderer ``repro-stencil report`` uses, so the checked-in document and
the store-generated one come from one code path.
"""

from __future__ import annotations

from repro.harness.experiments import run_study
from repro.results.report import experiments_md


def main() -> None:
    print(experiments_md(run_study()))


if __name__ == "__main__":
    main()
