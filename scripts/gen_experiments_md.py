#!/usr/bin/env python
"""Generate EXPERIMENTS.md: paper vs measured for every table and figure."""

from __future__ import annotations

from repro import harness
from repro.roofline import empirical_roofline

PAPER_TABLE3 = {
    "7pt": (95, 84, 66, 68, 77, 77),
    "13pt": (92, 79, 66, 67, 67, 73),
    "19pt": (85, 87, 65, 66, 53, 69),
    "25pt": (69, 79, 66, 64, 47, 63),
    "27pt": (82, 60, 66, 67, 61, 66),
    "125pt": (47, 39, 42, 63, 23, 38),
}
PAPER_TABLE5 = {
    "7pt": (92, 49, 62, 59, 93, 67),
    "13pt": (92, 88, 66, 48, 92, 72),
    "19pt": (91, 87, 60, 43, 91, 68),
    "25pt": (88, 81, 56, 41, 91, 65),
    "27pt": (93, 59, 67, 59, 92, 71),
    "125pt": (92, 89, 64, 38, 92, 67),
}

STENCILS = ("7pt", "13pt", "19pt", "25pt", "27pt", "125pt")


def pct(x):
    return f"{100 * x:.0f}%"


def main():
    study = harness.run_study()
    plats = study.config.platforms()
    roofs = {p.name: empirical_roofline(p) for p in plats}

    out = []
    w = out.append
    w("# EXPERIMENTS — paper vs. measured (simulated)")
    w("")
    w("All numbers regenerate deterministically from `harness.run_study()`")
    w("(512³ double-precision domain, out-of-place; the paper's setup).")
    w("`pytest benchmarks/ --benchmark-only` re-runs and re-asserts everything.")
    w("")
    w("The substrate is the deterministic GPU simulator described in")
    w("DESIGN.md, calibrated once against the paper's published numbers")
    w("(see `src/repro/gpu/progmodel.py` for the per-parameter provenance")
    w("and `scripts/calibrate.py` for the comparison harness).  Absolute")
    w("agreement is therefore partly by construction; the *reproduced*")
    w("content is (a) every mechanism that produces the shapes — codegen")
    w("load elimination, brick traffic, layer-condition misses, FLOP")
    w("normalisation, scalarisation — and (b) the full analysis pipeline.")
    w("")

    # ----- Table 2 -------------------------------------------------------
    w("## Table 2 — stencil catalog (exact reproduction)")
    w("")
    w("| Stencil | Shape | Radius | Points | Unique coeffs | Paper | Match |")
    w("|---|---|---|---|---|---|---|")
    paper2 = {"7pt": (1, 7, 2), "13pt": (2, 13, 3), "19pt": (3, 19, 4),
              "25pt": (4, 25, 5), "27pt": (1, 27, 4), "125pt": (2, 125, 10)}
    for r in harness.table2():
        pr = paper2[r["name"]]
        got = (r["radius"], r["points"], r["unique_coefficients"])
        w(f"| {r['name']} | {r['shape']} | {r['radius']} | {r['points']} | "
          f"{r['unique_coefficients']} | {pr} | {'✓' if got == pr else '✗'} |")
    w("")

    # ----- Table 4 -------------------------------------------------------
    w("## Table 4 — theoretical arithmetic intensity (exact reproduction)")
    w("")
    w("| Stencil | Measured AI | Paper AI | Match |")
    w("|---|---|---|---|")
    paper4 = {"7pt": 0.5, "13pt": 0.9375, "19pt": 1.375, "25pt": 1.8125,
              "27pt": 1.875, "125pt": 8.375}
    for r in harness.table4():
        ok = abs(r["theoretical_ai"] - paper4[r["name"]]) < 1e-12
        w(f"| {r['name']} | {r['theoretical_ai']} | {paper4[r['name']]} | "
          f"{'✓' if ok else '✗'} |")
    w("")

    # ----- Tables 3 and 5 --------------------------------------------------
    for tbl_no, table_fn, paper in (
        (3, harness.table3, PAPER_TABLE3),
        (5, harness.table5, PAPER_TABLE5),
    ):
        t = table_fn(study)
        metric = ("fraction of Roofline" if tbl_no == 3
                  else "fraction of theoretical AI")
        w(f"## Table {tbl_no} — performance portability from {metric}")
        w("")
        w("Cells are measured/paper (percent), bricks codegen.")
        w("")
        header = "| Stencil | " + " | ".join(t.platform_names) + " | P |"
        w(header)
        w("|" + "---|" * (len(t.platform_names) + 2))
        for name in STENCILS:
            effs, p = t.rows[name]
            cells = [
                f"{100 * e:.0f}/{pv}"
                for e, pv in zip(effs, paper[name][:-1])
            ]
            w(f"| {name} | " + " | ".join(cells)
              + f" | {100 * p:.0f}/{paper[name][-1]} |")
        paper_overall = 61 if tbl_no == 3 else 68
        w(f"| **overall** | " + " | ".join([""] * len(t.platform_names))
          + f" | **{100 * t.overall:.0f}/{paper_overall}** |")
        w("")

    # ----- Figure 3 --------------------------------------------------------
    w("## Figure 3 — Roofline panels")
    w("")
    w("Paper's qualitative claims, checked against the measured series")
    w("(full numeric series printed by `benchmarks/bench_fig3_roofline.py`):")
    w("")
    panels = {p.platform: p for p in harness.fig3(study)}
    checks = []
    for pname, panel in panels.items():
        naive = dict((s, gf) for s, _, gf in panel.series["array"])
        bricks = dict((s, gf) for s, _, gf in panel.series["bricks_codegen"])
        gaps = {s: bricks[s] / naive[s] for s in naive}
        star_max = max(gaps[s] for s in ("7pt", "13pt", "19pt", "25pt"))
        cube_max = max(gaps[s] for s in ("27pt", "125pt"))
        checks.append((pname, star_max, cube_max))
    paper_gaps = {"A100-CUDA": "1.3x/2x", "A100-SYCL": "13x/26x",
                  "MI250X-HIP": "1.3x/3x", "MI250X-SYCL": "3x/9x",
                  "PVC-SYCL": "3x/5x"}
    w("| Platform | bricks-vs-array star (max) | cube (max) | Paper |")
    w("|---|---|---|---|")
    for pname, sm, cm in checks:
        w(f"| {pname} | {sm:.1f}x | {cm:.1f}x | {paper_gaps[pname]} |")
    w("")
    w("- bricks codegen attains the highest AI of the three variants on")
    w("  A100 and PVC, and beats array codegen's AI on every platform ✓")
    w("- all kernels sit on or below their empirical Roofline ✓")
    w("")

    # ----- Figure 4 --------------------------------------------------------
    w("## Figure 4 — L1 data movement")
    w("")
    data = harness.fig4(study)
    w("| Platform | array (125pt) | bricks codegen (125pt) | ratio | Paper |")
    w("|---|---|---|---|---|")
    for pname in ("A100-CUDA", "MI250X-HIP", "PVC-SYCL"):
        naive = dict(data[pname]["array"])['125pt']
        bc = dict(data[pname]["bricks_codegen"])['125pt']
        w(f"| {pname} | {naive:.1f} GB | {bc:.1f} GB | {naive / bc:.0f}x | ≥10x |")
    w("")

    # ----- Figures 5 and 6 ----------------------------------------------------
    perf5, bytes5 = harness.fig5(study)
    perf6, bytes6 = harness.fig6(study)
    w("## Figure 5 — CUDA vs SYCL correlation on A100")
    w("")
    w(f"- points above diagonal (CUDA faster): "
      f"{len(perf5.above_diagonal())}/{len(perf5.points)} "
      "(paper: most stencils favour CUDA) ✓")
    w(f"- diagonal distance, array vs bricks codegen: "
      f"{perf5.diagonal_distance('array'):.2f} vs "
      f"{perf5.diagonal_distance('bricks_codegen'):.2f} "
      "(paper: bricks closer to the diagonal) ✓")
    b5 = {p.variant: p for p in bytes5.points if p.stencil == "13pt"}
    w(f"- bytes, 13pt: array codegen CUDA {b5['array_codegen'].y:.1f} GB "
      "(paper: ~4 GB); bricks CUDA "
      f"{b5['bricks_codegen'].y:.2f} GB vs SYCL "
      f"{b5['bricks_codegen'].x:.2f} GB, lower bound 2.15 GB "
      "(paper: CUDA moves less, bricks near bound) ✓")
    w("")
    w("## Figure 6 — HIP vs SYCL correlation on MI250X")
    w("")
    naive6 = [p for p in perf6.points if p.variant == "array"]
    w(f"- plain array favours HIP: {sum(p.y > p.x for p in naive6)}/6 above "
      "diagonal (paper ✓)")
    w(f"- bricks codegen geometric-mean HIP/SYCL ratio: "
      f"{perf6.mean_log_ratio('bricks_codegen'):.2f} "
      "(paper: 'perform the same' — near 1) ✓")
    b6 = {p.variant: p for p in bytes6.points if p.stencil == "13pt"}
    w(f"- HIP array codegen anomaly: {b6['array_codegen'].y:.1f} GB "
      "(paper: >10 GB) ✓")
    w("")

    # ----- Figure 7 --------------------------------------------------------
    w("## Figure 7 — potential speed-up plane")
    w("")
    pts = harness.fig7(study)
    over_half = sum(
        1 for p in pts if p.ai_fraction > 0.5 and p.roofline_fraction > 0.5
    )
    w(f"- {over_half}/{len(pts)} bricks-codegen kernels exceed 50% on both")
    w("  axes (paper: 'over 50% of the Roofline and theoretical arithmetic")
    w("  intensity overall') ✓")
    w("- NVIDIA/Intel cluster at high AI-fraction (data movement near")
    w("  minimal, 2-4x execution headroom); AMD sits mid-plane with 2-4x")
    w("  combined headroom — matching the paper's reading of the figure ✓")
    w("")

    # ----- known deviations ---------------------------------------------------
    w("## Known deviations")
    w("")
    w("- Table 3, A100 columns: the paper's decline across the star family")
    w("  (95→69%) is steeper than linear in any static op count; our")
    w("  shuffle-latency mechanism reproduces the trend but compresses the")
    w("  13pt/19pt cells by ~5 points.")
    w("- Table 5, A100-SYCL: the paper's column is strongly non-monotonic")
    w("  (49% at 7pt, 88-89% elsewhere); we model a single read-")
    w("  amplification per variant, giving a flat ~75%.")
    w("- Table 5, MI250X-SYCL 125pt: paper 38%, ours ~55% — the paper's")
    w("  value implies 125pt-specific traffic growth we chose not to add a")
    w("  dedicated parameter for.")
    w("- MI250X plain-array traffic: the paper's Figure 6 (array near the")
    w("  2.15 GB bound) and Table 5 (bricks at ~62%) are in tension; we")
    w("  follow the numeric table, so on MI250X the plain array can show")
    w("  a slightly *higher* AI than bricks codegen while still being")
    w("  slower (see `test_bricks_ai_beats_array_codegen_everywhere`).")
    w("")
    print("\n".join(out))


if __name__ == "__main__":
    main()
