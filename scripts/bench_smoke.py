#!/usr/bin/env python
"""Observability regression gate: one traced simulate() must emit every
pipeline-stage span.

CI runs this after the unit tests.  If an instrumentation point is ever
dropped (a refactor removes a ``with span(...)``), the trace goes dark
silently — this script turns that into a hard failure.  It also checks
the disabled-tracer overhead stays negligible.

Exit status: 0 = all expected spans present, 1 = something is missing.
"""

from __future__ import annotations

import sys
import time

from repro import obs
from repro.dsl.shapes import by_name
from repro.gpu.progmodel import platform
from repro.gpu.simulator import simulate

#: Every span one simulate() call must produce, pipeline order.
EXPECTED_SPANS = (
    "simulate",
    "codegen",
    "codegen.generate",
    "cost",
    "traffic",
    "traffic.estimate",
    "timing",
)

#: Counters one simulate() call must bump.
EXPECTED_COUNTERS = ("simulate.calls", "simulate.tiles", "codegen.vector_ops")


def main() -> int:
    tracer = obs.set_tracer(obs.Tracer(enabled=True))
    registry = obs.set_registry(obs.MetricsRegistry())

    result = simulate(
        by_name("13pt").build(),
        "bricks_codegen",
        platform("A100", "CUDA"),
        domain=(256, 256, 256),
        stencil_name="13pt",
    )
    print(result.describe())
    print()
    print(obs.render_tree(tracer.roots()))
    print()
    print(registry.render_table())
    print()

    failures = []
    recorded = {s.name for s in tracer.spans()}
    for name in EXPECTED_SPANS:
        if name not in recorded:
            failures.append(f"missing pipeline span: {name}")
    for name in EXPECTED_COUNTERS:
        try:
            if registry.get(name).value <= 0:
                failures.append(f"counter never incremented: {name}")
        except Exception:
            failures.append(f"missing counter: {name}")

    # Disabled-tracer overhead guard: span call sites must stay near-free.
    obs.set_tracer(obs.Tracer(enabled=False))
    t0 = time.perf_counter()
    for _ in range(100_000):
        with obs.span("hot", a=1):
            pass
    elapsed = time.perf_counter() - t0
    print(f"disabled-tracer overhead: {elapsed * 1e3:.1f} ms / 100k spans")
    if elapsed > 2.0:
        failures.append(
            f"disabled tracer too slow: {elapsed:.2f}s per 100k spans"
        )

    if failures:
        print("\nOBSERVABILITY GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nobservability gate OK: all pipeline spans + counters present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
