#!/usr/bin/env python
"""Performance smoke gates: observability, the parallel sweep engine,
the vectorized cache simulator, and (optionally) chaos testing.

CI runs this after the unit tests.  Gates:

1. **observability** — one traced ``simulate()`` must emit every
   pipeline-stage span and bump the expected counters, and the disabled
   tracer must stay near-free.  If an instrumentation point is ever
   dropped (a refactor removes a ``with span(...)``), the trace goes
   dark silently — this turns that into a hard failure.
2. **cache simulator** — the vectorized :meth:`CacheSim.access_array`
   path must produce *identical* miss counts to the scalar oracle on a
   ~1M-access per-element stencil trace, and must beat it by a healthy
   margin (hard floor 5x, target 10x).
3. **parallel sweep** — the 90-point study must survive a parallel run
   and match the serial result; the speedup gate scales with the
   machine (>= 2x only where >= 4 CPUs and >= 4 jobs are available —
   a 1-core container records honest numbers instead of failing).
4. **batch engine** — ``dispatch="vectorized"`` must reproduce the
   serial 90-point study bit-for-bit (results *and* counters), a cold
   ~100k-point ``simulate_batch`` must beat a scalar baseline probe by
   >= 100x with sampled spot-checks against the oracle, and
   auto-dispatch with ``--jobs`` must never lose to serial.
5. **chaos** (``--inject-faults [SEED]``) — the same sweep under a
   seeded transient-fault plan (raised errors + corrupted payloads)
   must complete via retries and stay bit-identical to the fault-free
   serial run; the faulted run's span tree lands in ``--trace-out`` as
   a Chrome trace for inspection.
6. **serve** (``--serve``) — request RTT p50/p95 through the study
   service (submit → poll → fetch over real HTTP) vs direct
   ``run_study``: every served study must be byte-identical to the
   direct run, a duplicate pass must be answered entirely from the
   shared store (dedup RTT p95 under a hard ceiling, zero simulation),
   and the ``gate.serve.*`` numbers trend in the warehouse.

Timings land in ``BENCH_sweep.json`` (``--out``) so perf regressions
are visible in review diffs.  With ``--telemetry-db PATH`` (default
``$REPRO_TELEMETRY_DB``) the whole run — span tree, counters, and the
gate values above — is also appended to the persistent telemetry
warehouse and judged against its rolling baseline; the ``obs diff``
verdict prints at the end as a *soft* gate (cross-run drift warns, only
the hard in-run gates fail the build).

The whole run is traced: if any gate crashes (e.g. a worker dies), the
error and the span tree at the time of the crash are printed to stderr
and the exit status is 1 — a crash is never a silent pass.

Exit status: 0 = all gates passed, 1 = something regressed or crashed.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
import traceback

import numpy as np

from repro import harness, obs
from repro.errors import ObservabilityError
from repro.codegen import clear_codegen_memo
from repro.dsl.shapes import by_name
from repro.gpu.batch import BatchPoint, simulate_batch
from repro.gpu.cache import CacheSim
from repro.gpu.progmodel import platform
from repro.gpu.simulator import simulate
from repro.resilience import FaultPlan, RetryPolicy

#: Every span one simulate() call must produce, pipeline order.
EXPECTED_SPANS = (
    "simulate",
    "codegen",
    "codegen.generate",
    "cost",
    "traffic",
    "traffic.estimate",
    "timing",
)

#: Counters one simulate() call must bump.
EXPECTED_COUNTERS = ("simulate.calls", "simulate.tiles", "codegen.vector_ops")

#: Vectorized CacheSim speedup: hard floor / soft target over the oracle.
VECTOR_SPEEDUP_FLOOR = 5.0
VECTOR_SPEEDUP_TARGET = 10.0

#: Chaos-leg fault rates (transient kinds only: the sweep must recover).
CHAOS_RAISE_RATE = 0.06
CHAOS_CORRUPT_RATE = 0.03

#: Batch-engine gate: vectorized throughput over the scalar baseline at
#: the ~100k-point scale (hard floor), and the number of scalar points
#: the baseline probe times.
BATCH_SPEEDUP_FLOOR = 100.0
BATCH_PROBE_POINTS = 200

#: Serve gate: distinct tenant requests timed through the service, and
#: the hard ceiling on the p95 RTT of a dedup'd (store-answered)
#: duplicate — a pure HTTP + hash lookup that must never grow a sweep.
SERVE_REQUESTS = 6
SERVE_DEDUP_P95_CEILING_MS = 1000.0


def _counter_value(name: str) -> int:
    try:
        return obs.get_registry().get(name).value
    except Exception:
        return 0


def obs_gate(failures: list) -> None:
    """Gate 1: the instrumentation regression check."""
    tracer = obs.get_tracer()
    registry = obs.get_registry()

    result = simulate(
        by_name("13pt").build(),
        "bricks_codegen",
        platform("A100", "CUDA"),
        domain=(256, 256, 256),
        stencil_name="13pt",
    )
    print(result.describe())
    print()
    print(obs.render_tree(tracer.roots()))
    print()
    print(registry.render_table())
    print()

    recorded = {s.name for s in tracer.spans()}
    for name in EXPECTED_SPANS:
        if name not in recorded:
            failures.append(f"missing pipeline span: {name}")
    for name in EXPECTED_COUNTERS:
        try:
            if registry.get(name).value <= 0:
                failures.append(f"counter never incremented: {name}")
        except Exception:
            failures.append(f"missing counter: {name}")

    # Disabled-tracer overhead guard: span call sites must stay near-free.
    # Swap in a disabled tracer for the measurement, then restore the
    # run-wide one so later gates (and crash reports) keep their spans.
    obs.set_tracer(obs.Tracer(enabled=False))
    t0 = time.perf_counter()
    for _ in range(100_000):
        with obs.span("hot", a=1):
            pass
    elapsed = time.perf_counter() - t0
    obs.set_tracer(tracer)
    print(f"disabled-tracer overhead: {elapsed * 1e3:.1f} ms / 100k spans")
    if elapsed > 2.0:
        failures.append(
            f"disabled tracer too slow: {elapsed:.2f}s per 100k spans"
        )


def element_trace(
    n=(55, 55, 55), elem_bytes=8, line_bytes=128
) -> np.ndarray:
    """~1M-access per-element read trace of a 7-point star sweep.

    One address per element *load* (every tap of every output element,
    taps consecutive per element), line-granular — the access pattern a
    scalar stencil kernel actually presents to a cache.
    """
    ni, nj, nk = n
    offs = ((0, 0, 0), (0, 0, -1), (0, 0, 1), (0, -1, 0), (0, 1, 0),
            (-1, 0, 0), (1, 0, 0))
    ii, jj, kk = np.meshgrid(
        np.arange(1, ni - 1), np.arange(1, nj - 1), np.arange(1, nk - 1),
        indexing="ij",
    )
    taps = [
        (((ii + di) * nj + (jj + dj)) * nk + (kk + dk)).reshape(-1)
        for di, dj, dk in offs
    ]
    elems = np.stack(taps, axis=-1).reshape(-1)  # element-major order
    return elems * elem_bytes // line_bytes


def cachesim_bench(failures: list, doc: dict) -> None:
    """Gate 2: vectorized path vs the scalar oracle, 1M-access trace."""
    trace = element_trace()
    kw = dict(capacity_bytes=1024 * 1024, line_bytes=128, associativity=0)

    scalar = CacheSim(vectorize=False, **kw)
    t0 = time.perf_counter()
    scalar_misses = scalar.access_array(trace)
    scalar_s = time.perf_counter() - t0

    vector = CacheSim(vectorize=True, **kw)
    t0 = time.perf_counter()
    vector_misses = vector.access_array(trace)
    vector_s = time.perf_counter() - t0

    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
    doc["cachesim"] = {
        "accesses": int(trace.size),
        "capacity_bytes": kw["capacity_bytes"],
        "associativity": "full",
        "misses": int(vector_misses),
        "scalar_s": round(scalar_s, 4),
        "vectorized_s": round(vector_s, 4),
        "scalar_accesses_per_s": round(trace.size / scalar_s),
        "vectorized_accesses_per_s": round(trace.size / vector_s),
        "speedup": round(speedup, 1),
    }
    print(
        f"cachesim: {trace.size} accesses, scalar {scalar_s * 1e3:.0f} ms, "
        f"vectorized {vector_s * 1e3:.0f} ms ({speedup:.1f}x)"
    )

    if vector_misses != scalar_misses:
        failures.append(
            f"vectorized CacheSim diverged from the oracle: "
            f"{vector_misses} vs {scalar_misses} misses"
        )
    if vector.stats != scalar.stats:
        failures.append("vectorized CacheSim statistics differ from oracle")
    if speedup < VECTOR_SPEEDUP_FLOOR:
        failures.append(
            f"vectorized CacheSim speedup {speedup:.1f}x below the "
            f"{VECTOR_SPEEDUP_FLOOR}x floor"
        )
    elif speedup < VECTOR_SPEEDUP_TARGET:
        print(
            f"WARNING: cachesim speedup {speedup:.1f}x below the "
            f"{VECTOR_SPEEDUP_TARGET}x target (machine under load?)"
        )


def _timed_study(parallel: int, **kw) -> tuple:
    """One cold full sweep (memo + codegen memo cleared), timed."""
    harness.clear_study_cache()
    clear_codegen_memo()
    t0 = time.perf_counter()
    study = harness.run_study(parallel=parallel, **kw)
    return study, time.perf_counter() - t0


def sweep_bench(failures: list, doc: dict, jobs: int) -> None:
    """Gate 3: serial vs parallel 90-point sweep, equal results."""
    cpus = os.cpu_count() or 1
    serial_study, serial_s = _timed_study(parallel=1)
    # dispatch="pool" keeps this gate about the process-pool engine;
    # auto-dispatch would route jobs > 1 to the vectorized engine, which
    # has its own gate (batch_bench).
    parallel_study, parallel_s = _timed_study(parallel=jobs, dispatch="pool")
    harness.clear_study_cache()

    points = len(serial_study)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    doc["sweep"] = {
        "points": points,
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "serial_points_per_s": round(points / serial_s, 1),
        "parallel_points_per_s": round(points / parallel_s, 1),
        "speedup": round(speedup, 2),
    }
    print(
        f"sweep: {points} points, serial {serial_s:.2f} s, "
        f"parallel(x{jobs}) {parallel_s:.2f} s ({speedup:.2f}x, {cpus} CPUs)"
    )

    if parallel_study.results != serial_study.results:
        failures.append("parallel sweep results differ from serial sweep")
    # The speedup gate only binds where the hardware can deliver it; a
    # 1-core CI container still checks equivalence and records timings.
    if cpus >= 4 and jobs >= 4 and speedup < 2.0:
        failures.append(
            f"parallel sweep speedup {speedup:.2f}x < 2.0x "
            f"({jobs} jobs on {cpus} CPUs)"
        )
    elif cpus >= 2 and jobs >= 2 and speedup < 1.1:
        failures.append(
            f"parallel sweep speedup {speedup:.2f}x < 1.1x "
            f"({jobs} jobs on {cpus} CPUs)"
        )


def _batch_matrix() -> list:
    """A ~100k-point matrix: the full study combos x a domain lattice.

    Domain extents respect every platform's default tile (``ni`` a
    multiple of 64 covers the widest SIMD tile; ``nj``/``nk`` multiples
    of 4), so every point is valid on every platform.  6 stencils x 5
    platforms x 3 variants x 1152 domains = 103 680 points.
    """
    config = harness.ExperimentConfig()
    stencils = [(name, by_name(name).build()) for name in config.stencils]
    platforms = config.platforms()
    ni_axis = [64 * m for m in range(1, 9)]          # 64 .. 512
    nj_axis = [4 * m for m in range(1, 13)]          # 4 .. 48
    nk_axis = [4 * m for m in range(1, 13)]          # 4 .. 48
    return [
        BatchPoint(
            stencil=stencil,
            variant=variant,
            platform=plat,
            domain=(ni, nj, nk),
            stencil_name=name,
        )
        for name, stencil in stencils
        for plat in platforms
        for variant in config.variants
        for ni in ni_axis
        for nj in nj_axis
        for nk in nk_axis
    ]


def batch_bench(failures: list, doc: dict, jobs: int) -> None:
    """Gate 5: the vectorized batch engine vs the scalar oracle.

    Four legs: (a) the 90-point study under ``dispatch="vectorized"``
    must be identical to the serial oracle — results *and* the
    ``simulate.*`` counter deltas; (b) the vectorized study's own
    points/s; (c) a cold ~100k-point ``simulate_batch`` must beat a
    scalar baseline probe (same points, same ``check_invariants=False``)
    by >= 100x, with a sampled spot-check against scalar ``simulate()``;
    (d) auto-dispatch with ``--jobs`` must be at least as fast as the
    serial engine on the 90-point study.
    """
    watched = ("simulate.calls", "simulate.tiles", "codegen.vector_ops")

    def snap() -> dict:
        return {name: _counter_value(name) for name in watched}

    # (a) + (b): serial oracle vs vectorized study, results + counters.
    before = snap()
    oracle, serial_s = _timed_study(parallel=1)
    after = snap()
    serial_deltas = {k: after[k] - before[k] for k in watched}

    before = snap()
    vec_study, vec_s = _timed_study(parallel=1, dispatch="vectorized")
    after = snap()
    vec_deltas = {k: after[k] - before[k] for k in watched}

    points = len(oracle)
    if vec_study.results != oracle.results:
        failures.append("vectorized study differs from the serial oracle")
    if vec_deltas != serial_deltas:
        failures.append(
            f"vectorized study counters diverged from serial: "
            f"{vec_deltas} vs {serial_deltas}"
        )

    # (d): auto-dispatch must never lose to serial on the study.  Timed
    # before the 100k leg so its measurement isn't taken with ~500k
    # result objects live on the heap.
    auto_study, auto_s = _timed_study(parallel=jobs)
    harness.clear_study_cache()
    if auto_study.results != oracle.results:
        failures.append("auto-dispatched study differs from the serial oracle")
    auto_speedup = serial_s / auto_s if auto_s > 0 else float("inf")
    if auto_speedup < 1.0:
        failures.append(
            f"auto-dispatch (jobs={jobs}) slower than serial: "
            f"{auto_s:.2f} s vs {serial_s:.2f} s"
        )

    # (c): 100k-point batch vs a scalar baseline probe.  Two reps, best
    # taken (standard min-of-N timing): the first rep pays one-off heap
    # growth for ~500k result objects on top of the cold codegen memo,
    # which is allocator warm-up, not engine throughput.  Both are
    # recorded; each rep clears the codegen memo so codegen stays cold.
    matrix = _batch_matrix()
    batch_s = float("inf")
    batch_cold_s = None
    for _ in range(2):
        clear_codegen_memo()
        batch_results = None
        t0 = time.perf_counter()
        batch_results = simulate_batch(matrix, check_invariants=False)
        rep_s = time.perf_counter() - t0
        if batch_cold_s is None:
            batch_cold_s = rep_s
        batch_s = min(batch_s, rep_s)
    batch_pts_per_s = len(matrix) / batch_s

    stride = max(1, len(matrix) // BATCH_PROBE_POINTS)
    sample_idx = list(range(0, len(matrix), stride))[:BATCH_PROBE_POINTS]
    t0 = time.perf_counter()
    scalar_sample = [
        simulate(
            matrix[i].stencil,
            matrix[i].variant,
            matrix[i].platform,
            domain=matrix[i].domain,
            stencil_name=matrix[i].stencil_name,
            check_invariants=False,
        )
        for i in sample_idx
    ]
    probe_s = time.perf_counter() - t0
    probe_pts_per_s = len(sample_idx) / probe_s
    speedup = batch_pts_per_s / probe_pts_per_s

    mismatches = sum(
        1 for i, ref in zip(sample_idx, scalar_sample)
        if batch_results[i] != ref
    )
    if mismatches:
        failures.append(
            f"batch results diverged from scalar simulate() on "
            f"{mismatches}/{len(sample_idx)} sampled points"
        )
    if speedup < BATCH_SPEEDUP_FLOOR:
        failures.append(
            f"batch speedup {speedup:.0f}x below the "
            f"{BATCH_SPEEDUP_FLOOR:.0f}x floor "
            f"({batch_pts_per_s:.0f} vs {probe_pts_per_s:.0f} pts/s)"
        )

    doc["batch"] = {
        "points_100k": len(matrix),
        "batch_s": round(batch_s, 3),
        "batch_cold_s": round(batch_cold_s, 3),
        "points_per_s_100k": round(batch_pts_per_s),
        "probe_points": len(sample_idx),
        "serial_probe_points_per_s": round(probe_pts_per_s, 1),
        "speedup_vs_serial": round(speedup, 1),
        "points_per_s_90": round(points / vec_s, 1),
        "vectorized_s_90": round(vec_s, 3),
        "auto_jobs": jobs,
        "auto_s": round(auto_s, 3),
        "auto_speedup": round(auto_speedup, 2),
    }
    print(
        f"batch: {len(matrix)} points in {batch_s:.2f} s "
        f"({batch_pts_per_s:.0f} pts/s, {speedup:.0f}x scalar), "
        f"90-point study {vec_s:.3f} s, auto(x{jobs}) {auto_speedup:.2f}x"
    )


def chaos_bench(
    failures: list, doc: dict, jobs: int, seed: int, trace_out: str
) -> None:
    """Gate 4: the sweep under injected transient faults must recover.

    A seeded :class:`FaultPlan` sprinkles transient raises and corrupt
    payloads over the 90-point matrix; the retrying executor must still
    deliver a complete study, bit-identical to the fault-free serial
    baseline, with the retry counters accounting for every injection.
    """
    config = harness.ExperimentConfig()
    plan = FaultPlan.seeded(
        seed,
        config.keys(),
        raise_rate=CHAOS_RAISE_RATE,
        corrupt_rate=CHAOS_CORRUPT_RATE,
    )
    policy = RetryPolicy(retries=3, backoff_s=0.01)

    clean_study, _ = _timed_study(parallel=1)

    retries_before = _counter_value("exec.retries")
    roots_before = len(obs.get_tracer().roots())
    chaotic_study, chaos_s = _timed_study(
        parallel=jobs, policy=policy, fault_plan=plan
    )
    harness.clear_study_cache()
    retries = _counter_value("exec.retries") - retries_before

    doc["chaos"] = {
        "seed": seed,
        "jobs": jobs,
        "injected_raise": plan.count("raise"),
        "injected_corrupt": plan.count("corrupt"),
        "retries": retries,
        "failed_points": len(chaotic_study.failed),
        "chaos_s": round(chaos_s, 3),
    }
    print(
        f"chaos: seed {seed}, {plan.count('raise')} raises + "
        f"{plan.count('corrupt')} corruptions injected, {retries} retries, "
        f"{len(chaotic_study.failed)} failed points ({chaos_s:.2f} s)"
    )

    if len(plan) == 0:
        failures.append(
            f"chaos seed {seed} injected no faults over {len(config.keys())} "
            f"keys — pick another seed"
        )
    if not chaotic_study.complete:
        failures.append(
            f"chaotic sweep did not recover: {len(chaotic_study.failed)} "
            f"point(s) still failed after retries"
        )
    if chaotic_study.results != clean_study.results:
        failures.append(
            "chaotic sweep results differ from the fault-free serial sweep"
        )
    if len(plan) and retries < len(plan):
        failures.append(
            f"only {retries} retries recorded for {len(plan)} injected "
            f"faults — injections were not exercised"
        )
    if trace_out:
        obs.write_trace(
            obs.get_tracer().roots()[roots_before:], trace_out, fmt="chrome"
        )
        print(f"chaos trace written to {trace_out}")


def _quantile_ms(samples_s: list, q: float) -> float:
    """The q-quantile of a list of second-timings, in milliseconds."""
    ordered = sorted(samples_s)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx] * 1e3


def serve_bench(failures: list, doc: dict) -> None:
    """Gate 6 (``--serve``): service RTT vs direct ``run_study``.

    Boots the study server in-process on a free port and times
    ``SERVE_REQUESTS`` distinct small studies three ways: direct
    ``run_study`` (the floor), cold through the service (submit → poll
    → fetch over real HTTP; carries one poll interval of latency by
    design), and duplicated through the service (answered from the
    shared result store with zero simulation).  Hard conditions: byte
    identity with ``dump_study`` of the direct run, every duplicate a
    dedup hit, and the dedup RTT p95 under
    ``SERVE_DEDUP_P95_CEILING_MS``.
    """
    from repro.serve import Orchestrator, ResultStore, ServeClient, start_server

    config_docs = [
        {"stencils": ["7pt"], "variants": ["array"],
         "domain": [64 * (i + 1), 64, 64]}
        for i in range(SERVE_REQUESTS)
    ]
    configs = [harness.config_from_dict(d) for d in config_docs]

    direct_rtts, direct_bytes = [], []
    for config in configs:
        harness.clear_study_cache()
        clear_codegen_memo()
        t0 = time.perf_counter()
        study = harness.run_study(config)
        direct_rtts.append(time.perf_counter() - t0)
        direct_bytes.append(
            json.dumps(harness.study_to_dict(study), indent=1).encode()
        )

    orchestrator = Orchestrator(
        ResultStore(), queue_limit=32, workers=2, batch_window=8
    )
    server, _thread = start_server(0, orchestrator)
    server.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    try:
        serve_rtts, job_ids = [], []
        for config_doc in config_docs:
            harness.clear_study_cache()
            clear_codegen_memo()
            t0 = time.perf_counter()
            job = client.submit(config_doc)
            final = client.wait(job["job_id"])
            body = client.result_bytes(job["job_id"])
            serve_rtts.append(time.perf_counter() - t0)
            job_ids.append(job["job_id"])
            if final["state"] != "done" or not final["complete"]:
                failures.append(
                    f"served study {job['job_id']} not complete: {final}"
                )
        for expected, job_id in zip(direct_bytes, job_ids):
            if client.result_bytes(job_id) != expected:
                failures.append(
                    f"served result {job_id} is not byte-identical to the "
                    f"direct run_study"
                )

        dedup_before = _counter_value("serve.dedup_hits")
        points_before = _counter_value("study.points")
        dedup_rtts = []
        for config_doc in config_docs:
            t0 = time.perf_counter()
            job = client.submit(config_doc)
            client.result_bytes(job["job_id"])
            dedup_rtts.append(time.perf_counter() - t0)
            if not job["dedup"]:
                failures.append(
                    f"duplicate submission {job['job_id']} missed the "
                    f"shared store"
                )
        dedup_hits = _counter_value("serve.dedup_hits") - dedup_before
        if _counter_value("study.points") != points_before:
            failures.append(
                "duplicate submissions re-simulated points instead of "
                "being served from the store"
            )
    finally:
        server.shutdown_all()

    serve_p50, serve_p95 = _quantile_ms(serve_rtts, 0.5), _quantile_ms(serve_rtts, 0.95)
    dedup_p95 = _quantile_ms(dedup_rtts, 0.95)
    direct_p50 = _quantile_ms(direct_rtts, 0.5)
    doc["serve"] = {
        "requests": len(config_docs),
        "rtt_p50_ms": round(serve_p50, 2),
        "rtt_p95_ms": round(serve_p95, 2),
        "dedup_rtt_p50_ms": round(_quantile_ms(dedup_rtts, 0.5), 2),
        "dedup_rtt_p95_ms": round(dedup_p95, 2),
        "direct_p50_ms": round(direct_p50, 2),
        "direct_p95_ms": round(_quantile_ms(direct_rtts, 0.95), 2),
        "overhead_x": round(serve_p50 / direct_p50, 2) if direct_p50 else None,
        "dedup_hits": dedup_hits,
    }
    print(
        f"serve: {len(config_docs)} requests, RTT p50 {serve_p50:.0f} ms / "
        f"p95 {serve_p95:.0f} ms (direct p50 {direct_p50:.0f} ms), "
        f"dedup p95 {dedup_p95:.1f} ms, {dedup_hits} dedup hits"
    )

    if dedup_hits != len(config_docs):
        failures.append(
            f"only {dedup_hits}/{len(config_docs)} duplicates were dedup "
            f"hits"
        )
    if dedup_p95 > SERVE_DEDUP_P95_CEILING_MS:
        failures.append(
            f"dedup RTT p95 {dedup_p95:.0f} ms above the "
            f"{SERVE_DEDUP_P95_CEILING_MS:.0f} ms ceiling"
        )


def _gate_results(doc: dict) -> dict:
    """The ``doc`` numbers worth trending, as named telemetry gates.

    The pass flags mirror the hard conditions the gates above enforce;
    purely informational rates (points/s, retry counts) record as
    passed so they trend without ever having gated.
    """
    gates: dict = {}
    if "cachesim" in doc:
        speedup = doc["cachesim"]["speedup"]
        gates["cachesim.speedup"] = (speedup, speedup >= VECTOR_SPEEDUP_FLOOR)
        gates["cachesim.vectorized_accesses_per_s"] = (
            float(doc["cachesim"]["vectorized_accesses_per_s"]), True,
        )
    if "sweep" in doc:
        sweep = doc["sweep"]
        cpus = doc.get("cpu_count", 1)
        binding = cpus >= 4 and sweep["jobs"] >= 4
        gates["sweep.speedup"] = (
            sweep["speedup"], sweep["speedup"] >= 2.0 or not binding,
        )
        gates["sweep.parallel_points_per_s"] = (
            sweep["parallel_points_per_s"], True,
        )
        gates["sweep.serial_points_per_s"] = (
            sweep["serial_points_per_s"], True,
        )
    if "batch" in doc:
        batch = doc["batch"]
        gates["batch.speedup_vs_serial"] = (
            batch["speedup_vs_serial"],
            batch["speedup_vs_serial"] >= BATCH_SPEEDUP_FLOOR,
        )
        gates["batch.points_per_s_100k"] = (
            float(batch["points_per_s_100k"]), True,
        )
        gates["batch.points_per_s_90"] = (batch["points_per_s_90"], True)
        gates["batch.auto_speedup"] = (
            batch["auto_speedup"], batch["auto_speedup"] >= 1.0,
        )
    if "serve" in doc:
        serve = doc["serve"]
        gates["serve.rtt_p50_ms"] = (serve["rtt_p50_ms"], True)
        gates["serve.rtt_p95_ms"] = (serve["rtt_p95_ms"], True)
        gates["serve.dedup_rtt_p95_ms"] = (
            serve["dedup_rtt_p95_ms"],
            serve["dedup_rtt_p95_ms"] <= SERVE_DEDUP_P95_CEILING_MS,
        )
        gates["serve.dedup_hits"] = (
            float(serve["dedup_hits"]),
            serve["dedup_hits"] == serve["requests"],
        )
        if serve["overhead_x"] is not None:
            gates["serve.overhead_x"] = (serve["overhead_x"], True)
    if "chaos" in doc:
        gates["chaos.retries"] = (float(doc["chaos"]["retries"]), True)
        gates["chaos.failed_points"] = (
            float(doc["chaos"]["failed_points"]),
            doc["chaos"]["failed_points"] == 0,
        )
    return gates


def record_telemetry(
    db_path: str, doc: dict, failures: list, duration_s: float
) -> None:
    """Append this bench run to the warehouse and print the soft verdict.

    Cross-run drift warns rather than fails: the in-run gates are the
    hard floor, the warehouse diff is the trend alarm (CI's dedicated
    telemetry job turns it into a hard check on a controlled history).
    """
    config = {"jobs": doc.get("sweep", {}).get("jobs"),
              "chaos": "chaos" in doc, "serve": "serve" in doc}
    config_hash = hashlib.sha256(
        json.dumps(config, sort_keys=True).encode()
    ).hexdigest()[:16]
    try:
        with obs.TelemetryStore(db_path) as store:
            run_id = store.record_run(
                "bench_smoke",
                gates=_gate_results(doc),
                config_hash=config_hash,
                duration_s=duration_s,
                extra={"gate_failures": list(failures)},
            )
            report = obs.diff_run(store, run_id=run_id)
        print(f"telemetry: run {run_id} appended to {db_path}")
        print(report.render())
        if not report.ok:
            print(
                "WARNING: telemetry drift vs rolling baseline (soft gate, "
                "not failing the build)"
            )
    except (OSError, ObservabilityError) as exc:
        failures.append(f"telemetry recording failed: {exc}")


def record_results(db_path: str, doc: dict, failures: list) -> None:
    """Append this run's gate values to the SQLite result store.

    Complements :func:`record_telemetry`: the result store keeps gate
    *values* as queryable rows (``bench_runs`` / ``bench_gates``), so
    perf history lives next to the study rows ``repro-stencil report``
    renders from.  A store failure is a recording failure, not a perf
    regression — reported, and it fails the run like any other gate.
    """
    from repro.errors import ResultStoreError
    from repro.results import ResultsStore

    try:
        with ResultsStore(db_path) as store:
            bench_id = store.ingest_gates(
                _gate_results(doc), source="bench_smoke", doc=doc
            )
        print(f"results: bench run {bench_id} appended to {db_path}")
    except (OSError, ResultStoreError) as exc:
        failures.append(f"result-store recording failed: {exc}")


def _run_gate(name: str, failures: list, fn, *args) -> None:
    """Run one gate; a crash prints the span tree and fails the run."""
    try:
        fn(failures, *args)
    except Exception as exc:
        traceback.print_exc()
        print(f"\n{name} gate crashed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        print("span tree at time of crash:", file=sys.stderr)
        print(obs.render_tree(obs.get_tracer().roots(), max_depth=3),
              file=sys.stderr)
        failures.append(f"{name} gate crashed: {type(exc).__name__}: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker processes for the parallel sweep leg (default 4)",
    )
    parser.add_argument(
        "--out", default="BENCH_sweep.json",
        help="where to write the benchmark record (default BENCH_sweep.json)",
    )
    parser.add_argument(
        "--inject-faults", nargs="?", const=0, type=int, default=None,
        metavar="SEED",
        help="also run the chaos gate: sweep under seeded transient "
             "faults, assert full recovery (default seed 0)",
    )
    parser.add_argument(
        "--trace-out", default="CHAOS_trace.json",
        help="Chrome trace of the chaos-gate sweep "
             "(default CHAOS_trace.json; only written with --inject-faults)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also run the serve gate: RTT p50/p95 through the study "
             "service vs direct run_study, dedup + byte-identity checks",
    )
    parser.add_argument(
        "--telemetry-db", default=None, metavar="PATH",
        help="append the run (spans, counters, gate values) to this "
        "telemetry warehouse and print the cross-run obs diff verdict "
        "(default: $REPRO_TELEMETRY_DB or off)",
    )
    parser.add_argument(
        "--results-db", default=None, metavar="PATH",
        help="append the run's gate values to this SQLite result store "
        "(default: $REPRO_RESULTS_DB or off)",
    )
    args = parser.parse_args(argv)

    # Every simulate() in the gates asserts the physical-sanity
    # invariants of repro.validate (exported, so worker processes
    # inherit it): a model regression fails the gate loudly instead of
    # shipping insane numbers into the benchmark record.
    os.environ.setdefault("REPRO_VALIDATE", "1")

    # Trace the whole run so a crash anywhere can show its span tree.
    obs.set_tracer(obs.Tracer(enabled=True))
    obs.set_registry(obs.MetricsRegistry())

    failures: list = []
    doc: dict = {"schema_version": 1, "cpu_count": os.cpu_count() or 1}
    t_start = time.perf_counter()

    _run_gate("observability", failures, obs_gate)
    _run_gate("cachesim", failures, cachesim_bench, doc)
    _run_gate("sweep", failures, sweep_bench, doc, args.jobs)
    _run_gate("batch", failures, batch_bench, doc, args.jobs)
    if args.inject_faults is not None:
        _run_gate(
            "chaos", failures, chaos_bench, doc, args.jobs,
            args.inject_faults, args.trace_out,
        )
    if args.serve:
        _run_gate("serve", failures, serve_bench, doc)

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"benchmark record written to {args.out}")

    telemetry_db = obs.resolve_db_path(args.telemetry_db)
    if telemetry_db:
        record_telemetry(
            telemetry_db, doc, failures, time.perf_counter() - t_start
        )

    from repro.results import resolve_results_db

    results_db = resolve_results_db(args.results_db)
    if results_db:
        record_results(results_db, doc, failures)

    if failures:
        print("\nPERFORMANCE GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        "\nperformance gate OK: obs spans, cachesim parity, sweep parity, "
        "batch parity"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
