#!/usr/bin/env python
"""Chaos drill: prove the study service survives kill -9 and worse.

CI's ``chaos-serve`` job runs this after the unit tests.  Three legs:

1. **kill -9 recovery** — boot a journaled server with an on-disk
   cache and per-point checkpointing, submit a 15-point study, SIGKILL
   the server the instant its first checkpoint flush appears on disk
   (no drain, no journal flush, no telemetry), then cold-start a new
   server on the same journal + cache.  The job must replay, resume
   from the checkpoint (``study.resumed_points > 0`` — only the points
   after the last flush are re-simulated), finish, and serve a result
   byte-identical to a direct in-process run.  Retried up to three
   times in case the sweep outruns the SIGKILL.
2. **supervised workers** — a ``--backend process`` server with a 2 s
   job deadline: a wedged job (30 s sleep) must be deadline-killed
   without stalling the other worker, a poison job (``drill_exit``)
   must crash its worker, be requeued, and end quarantined after
   ``--max-crashes`` attempts, and a normal job must complete
   throughout.  This leg runs **twice** with identical server
   arguments against one telemetry warehouse, so CI's follow-up
   ``repro-stencil obs diff`` hard-gates the crash-path counters
   (``serve.supervisor.deadline_kills`` / ``.quarantined`` are
   equal-direction specs: any drift across sessions fails the job).
3. **two replicas, one cache** — two servers sharing ``--cache-dir``
   are given the same study concurrently; both must finish with
   byte-identical results (the O_EXCL sidecar locks serialise the
   writers — no torn pickle, no lost checkpoint).

Legs 1 and 3 use per-run scratch directories, which are part of the
telemetry config hash — so those servers deliberately skip the
warehouse; their assertions live here.  Leg 2's argv is fully
deterministic, which is what makes its warehouse baseline gateable.

Exit status: 0 = every leg passed, 1 = anything failed.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro import harness
from repro.serve import ServeClient

#: 15 matrix points: wide enough that a SIGKILL lands mid-sweep.
RECOVERY_DOC = {
    "stencils": ["7pt", "13pt", "27pt"],
    "variants": ["array"],
    "domain": [64, 64, 64],
}

#: 1-point study for the wedged / poison / normal supervised jobs.
POINT_DOC = {
    "stencils": ["7pt"], "variants": ["array"], "domain": [64, 64, 64],
    "platforms": ["A100-CUDA"],
}

JOB_DEADLINE_S = 2.0
MAX_CRASHES = 2


def _fail(failures: list, message: str) -> None:
    print(f"FAIL: {message}")
    failures.append(message)


def _ok(message: str) -> None:
    print(f"ok: {message}")


def boot_server(*extra: str) -> tuple:
    """Start ``repro-stencil serve`` on a free port; returns (proc, client)."""
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", *extra,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_JOBS", None)
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    ready = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", ready)
    if not match:
        proc.kill()
        raise RuntimeError(f"server never became ready: {ready!r}")
    client = ServeClient(
        f"http://127.0.0.1:{match.group(1)}", timeout_s=60.0
    )
    return proc, client


def sigterm(proc: subprocess.Popen, timeout_s: float = 60.0):
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        return None, "did not exit"
    return proc.returncode, output


# ---- leg 1: kill -9 recovery ----------------------------------------------
def kill9_attempt(base: str, expected: bytes) -> tuple:
    """One kill -9 drill on fresh scratch state; returns (ok, why)."""
    journal = os.path.join(base, "journal.db")
    cache = os.path.join(base, "cache")
    os.makedirs(base, exist_ok=True)
    proc, client = boot_server(
        "--workers", "1", "--journal", journal, "--cache-dir", cache,
        "--checkpoint-every", "1",
    )
    job_id = client.submit(RECOVERY_DOC)["job_id"]
    deadline = time.monotonic() + 60.0
    killed = False
    while time.monotonic() < deadline:
        if glob.glob(os.path.join(cache, "*.ckpt.pkl")):
            proc.kill()  # SIGKILL: no drain, no flush, no mercy
            proc.wait(timeout=30)
            killed = True
            break
        time.sleep(0.002)
    if not killed:
        sigterm(proc)
        return False, "no checkpoint ever appeared"

    proc2, client2 = boot_server(
        "--workers", "1", "--journal", journal, "--cache-dir", cache,
    )
    try:
        final = client2.wait(job_id, timeout_s=120.0)
        body = client2.result_bytes(job_id)
        metrics = client2.metrics()
    finally:
        code, output = sigterm(proc2)
    if final["state"] != "done":
        return False, f"recovered job ended {final['state']}"
    if code != 0:
        return False, f"restarted server exited {code}"
    if body != expected:
        return False, "recovered result is not byte-identical"
    if metrics.get("serve.recovery.replayed_jobs", 0) < 1:
        return False, "journal replay re-enqueued nothing"
    resumed = metrics.get("study.resumed_points", 0)
    if resumed < 1:
        return False, "sweep finished before the SIGKILL landed"
    return True, (
        f"resumed {resumed} checkpointed points, re-simulated "
        f"{len(RECOVERY_DOC['stencils']) * 5 - resumed}"
    )


def kill9_leg(failures: list, expected: bytes, workdir: str) -> None:
    whys = []
    for attempt in range(3):
        ok, why = kill9_attempt(
            os.path.join(workdir, f"kill9-{attempt}"), expected
        )
        whys.append(why)
        if ok:
            _ok(f"kill -9 recovered byte-identically ({why})")
            return
        if "before the SIGKILL" not in why and "no checkpoint" not in why:
            break  # a real failure, not a racy miss
    _fail(failures, f"kill -9 drill never recovered: {whys}")


# ---- leg 2: supervised process workers ------------------------------------
def supervised_session(telemetry_db: str, failures: list) -> None:
    proc, client = boot_server(
        "--workers", "2", "--backend", "process",
        "--job-deadline", str(JOB_DEADLINE_S),
        "--max-crashes", str(MAX_CRASHES),
        "--telemetry-db", telemetry_db,
    )
    try:
        wedged = client.submit(POINT_DOC, {"sleep_s": 30.0})
        poison = client.submit(POINT_DOC, {"drill_exit": 7})
        final_poison = client.wait(poison["job_id"], timeout_s=120.0)
        final_wedged = client.wait(wedged["job_id"], timeout_s=120.0)
        # A normal job completes even after all of the above carnage.
        ok_job = client.submit(POINT_DOC)
        final_ok = client.wait(ok_job["job_id"], timeout_s=120.0)
        metrics = client.metrics()

        if final_wedged["state"] != "failed" or "deadline" not in (
            final_wedged.get("error") or ""
        ):
            _fail(failures, f"wedged job not deadline-killed: {final_wedged}")
        else:
            _ok(f"wedged worker killed at its {JOB_DEADLINE_S:g}s deadline")
        if final_poison["state"] != "failed" or "poison" not in (
            final_poison.get("error") or ""
        ):
            _fail(failures, f"poison job not quarantined: {final_poison}")
        elif final_poison.get("attempts") != MAX_CRASHES + 1:
            _fail(failures, f"poison attempts != {MAX_CRASHES + 1}: "
                  f"{final_poison}")
        else:
            _ok(f"poison job quarantined after {MAX_CRASHES + 1} crashes")
        if final_ok["state"] != "done":
            _fail(failures, f"normal job died with the chaos: {final_ok}")
        else:
            _ok("normal job completed amid the chaos")
        expected_counts = {
            "serve.supervisor.deadline_kills": 1,
            "serve.supervisor.quarantined": 1,
            "serve.supervisor.crashes": MAX_CRASHES + 1,
            "serve.supervisor.requeued": MAX_CRASHES,
        }
        for name, want in expected_counts.items():
            got = metrics.get(name, 0)
            if got != want:
                _fail(failures, f"{name} = {got}, wanted {want}")
    finally:
        code, output = sigterm(proc)
    if code != 0:
        _fail(failures, f"supervised server exited {code}; "
              f"tail: {(output or '')[-300:]}")
    elif "telemetry: run" not in (output or ""):
        _fail(failures, "supervised session not recorded to the warehouse")
    else:
        _ok("supervised session recorded to the warehouse")


# ---- leg 3: two replicas, one cache ---------------------------------------
def replica_leg(failures: list, expected: bytes, workdir: str) -> None:
    cache = os.path.join(workdir, "shared-cache")
    servers = [
        boot_server("--workers", "1", "--cache-dir", cache)
        for _ in range(2)
    ]
    try:
        jobs = [client.submit(RECOVERY_DOC) for _, client in servers]
        bodies = []
        for (_, client), job in zip(servers, jobs):
            final = client.wait(job["job_id"], timeout_s=120.0)
            if final["state"] != "done":
                _fail(failures, f"replica job ended {final['state']}")
                return
            bodies.append(client.result_bytes(job["job_id"]))
    finally:
        for proc, _ in servers:
            sigterm(proc)
    if bodies[0] != bodies[1]:
        _fail(failures, "replicas served different bytes for one study")
    elif bodies[0] != expected:
        _fail(failures, "replicas agree but differ from the direct run")
    else:
        _ok("two replicas over one cache served identical, correct bytes")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--telemetry-db", default="chaos-telemetry.db", metavar="PATH",
        help="warehouse the supervised sessions append to "
        "(default chaos-telemetry.db)",
    )
    parser.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="scratch directory for journals/caches (default: a tempdir)",
    )
    parser.add_argument(
        "--sessions", type=int, default=2,
        help="supervised-leg sessions (default 2: the second gives "
        "'obs diff' a same-config baseline)",
    )
    args = parser.parse_args(argv)
    workdir = args.workdir or tempfile.mkdtemp(prefix="chaos-serve-")

    print("computing the direct-run reference bytes...")
    study = harness.run_study(harness.config_from_dict(RECOVERY_DOC))
    expected = json.dumps(harness.study_to_dict(study), indent=1).encode()

    failures: list = []
    print("\n--- leg 1: kill -9 recovery ---")
    kill9_leg(failures, expected, workdir)
    for session in range(1, args.sessions + 1):
        print(f"\n--- leg 2: supervised workers "
              f"(session {session}/{args.sessions}) ---")
        supervised_session(args.telemetry_db, failures)
    print("\n--- leg 3: two replicas, one cache ---")
    replica_leg(failures, expected, workdir)

    if failures:
        print(f"\nCHAOS SERVE FAILED ({len(failures)} problem(s)):")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nchaos serve OK: kill -9 recovery, supervised workers, "
          "shared-cache replicas")
    return 0


if __name__ == "__main__":
    sys.exit(main())
