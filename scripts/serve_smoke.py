#!/usr/bin/env python
"""Service smoke: end-to-end drill of the study-serving HTTP service.

CI's ``service`` job runs this after the unit tests.  Each *session*
boots the real CLI server (``repro-stencil serve``) as a subprocess and
drives it over real HTTP:

1. **e2e study** — submit the paper's full 90-point study, poll to
   completion, fetch the result, and require it byte-identical to a
   direct in-process ``run_study`` + ``dump_study``.
2. **dedup** — immediately resubmit the same config: the job must be
   born ``done`` with ``dedup: true``, and the server's ``/metricz``
   counters must show zero additional simulated points.
3. **concurrency** — two distinct small studies submitted back-to-back
   share the worker pool and both complete.
4. **backpressure** — with both workers provably busy (status-polled to
   ``running``) and the queue filled to its limit, the next submission
   must bounce with HTTP 429 + ``Retry-After``; the queued drill jobs
   are then cancelled (so the drill never adds nondeterministic work).
5. **clean shutdown** — SIGTERM; the server must exit 0 and append its
   session (``serve.*`` counters, request spans) to the telemetry
   warehouse.

The drill runs **twice** against one warehouse with identical server
arguments, so the second session has a same-config rolling baseline —
CI follows up with ``repro-stencil obs diff`` as a *hard* gate (exit 2
on regression) over the ``serve.*`` specs in
:data:`repro.obs.regress.DEFAULT_SPECS`.  Every leg simulates a
deterministic number of points (drill jobs are cancelled, never run),
which is what makes the warehouse's ``counter.study.points``
equal-direction spec able to gate at zero tolerance.

Session 2 also exports the server's span tree as a Chrome trace
(``SERVE_trace.json``) for the artifact upload.

Exit status: 0 = every leg of both sessions passed, 1 = anything
failed or the server misbehaved.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time

from repro import harness
from repro.serve import BackpressureError, ServeClient

#: The two distinct small configs of the concurrency leg (5 points each).
CONCURRENT_DOCS = (
    {"stencils": ["7pt"], "variants": ["array"], "domain": [64, 64, 64]},
    {"stencils": ["13pt"], "variants": ["array"], "domain": [64, 64, 64]},
)

#: The 1-point config of the backpressure blockers (cancelled drill jobs
#: never run, so each session simulates exactly 90 + 5 + 5 + 2 points).
BLOCKER_DOC = {
    "stencils": ["7pt"], "variants": ["array"], "domain": [64, 64, 64],
    "platforms": ["A100-CUDA"],
}

QUEUE_LIMIT = 3
WORKERS = 2
BLOCKER_SLEEP_S = 3.0


def _fail(failures: list, message: str) -> None:
    print(f"FAIL: {message}")
    failures.append(message)


def _ok(message: str) -> None:
    print(f"ok: {message}")


def boot_server(telemetry_db: str, trace_out: str | None) -> tuple:
    """Start ``repro-stencil serve`` on a free port; returns (proc, client)."""
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0",
        "--workers", str(WORKERS),
        "--queue-limit", str(QUEUE_LIMIT),
        "--telemetry-db", telemetry_db,
    ]
    if trace_out:
        # --trace is observability plumbing: excluded from the config
        # hash, so both sessions still share one baseline group.
        argv += ["--trace", trace_out, "--trace-format", "chrome"]
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_JOBS", None)  # deterministic in-process sweeps
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    ready = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", ready)
    if not match:
        proc.kill()
        raise RuntimeError(f"server never became ready: {ready!r}")
    client = ServeClient(f"http://127.0.0.1:{match.group(1)}", timeout_s=60.0)
    return proc, client


def e2e_leg(client: ServeClient, failures: list, expected: bytes) -> None:
    """Leg 1: full paper study through the service, byte-identical."""
    t0 = time.perf_counter()
    job = client.submit()  # empty body = the paper's default config
    final = client.wait(job["job_id"], timeout_s=300.0)
    body = client.result_bytes(job["job_id"])
    elapsed = time.perf_counter() - t0
    if final["state"] != "done" or not final.get("complete"):
        _fail(failures, f"90-point study did not complete: {final}")
    elif final["points"] != 90:
        _fail(failures, f"expected 90 points, got {final['points']}")
    elif body != expected:
        _fail(failures, "served study is not byte-identical to dump_study")
    else:
        _ok(f"90-point study served byte-identical in {elapsed:.2f} s")


def dedup_leg(client: ServeClient, failures: list) -> None:
    """Leg 2: duplicate submission answered from the store, zero sims."""
    points_before = client.metrics().get("study.points", 0)
    job = client.submit()
    points_after = client.metrics().get("study.points", 0)
    if not job["dedup"] or job["state"] != "done":
        _fail(failures, f"duplicate submission was not a dedup hit: {job}")
    elif points_after != points_before:
        _fail(
            failures,
            f"dedup hit re-simulated points "
            f"({points_before} -> {points_after})",
        )
    else:
        hits = client.metrics().get("serve.dedup_hits", 0)
        _ok(f"duplicate served from the store with zero simulation "
            f"(serve.dedup_hits={hits})")


def concurrency_leg(client: ServeClient, failures: list) -> None:
    """Leg 3: two tenants' jobs in flight over one worker pool."""
    jobs = [client.submit(doc) for doc in CONCURRENT_DOCS]
    finals = [client.wait(j["job_id"]) for j in jobs]
    if any(f["state"] != "done" for f in finals):
        _fail(failures, f"concurrent jobs failed: "
              f"{[f['state'] for f in finals]}")
    elif jobs[0]["job_id"] == jobs[1]["job_id"]:
        _fail(failures, "distinct configs coalesced onto one job")
    else:
        _ok("two concurrent jobs completed over one pool")


def backpressure_leg(client: ServeClient, failures: list) -> None:
    """Leg 4: full queue bounces with 429; drill jobs are cancelled."""
    sleepy = {"sleep_s": BLOCKER_SLEEP_S}
    blockers = [client.submit(BLOCKER_DOC, sleepy) for _ in range(WORKERS)]
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        states = [client.status(j["job_id"])["state"] for j in blockers]
        if all(s == "running" for s in states):
            break
        time.sleep(0.05)
    else:
        _fail(failures, f"blockers never started running: {states}")
        return
    drills = [
        client.submit(BLOCKER_DOC, sleepy) for _ in range(QUEUE_LIMIT)
    ]
    try:
        client.submit(BLOCKER_DOC, sleepy)
    except BackpressureError as exc:
        if exc.retry_after_s < 1.0:
            _fail(failures, f"429 Retry-After too small: {exc.retry_after_s}")
        else:
            _ok(f"queue-full submission bounced with 429 "
                f"(Retry-After: {exc.retry_after_s:g}s)")
    else:
        _fail(failures, "submission beyond the queue limit was accepted")
    # Cancel the queued drills: they must never run (deterministic
    # session point count) and cancellation itself is part of the drill.
    for job in drills:
        doc = client.cancel(job["job_id"])
        if doc["state"] != "cancelled":
            _fail(failures, f"drill job would not cancel: {doc}")
    # Let the blockers finish so shutdown doesn't race a running sweep.
    for job in blockers:
        final = client.wait(job["job_id"], timeout_s=60.0)
        if final["state"] != "done":
            _fail(failures, f"blocker ended {final['state']}")


def shutdown_leg(proc: subprocess.Popen, failures: list) -> None:
    """Leg 5: SIGTERM -> exit 0 with the telemetry record appended."""
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        _fail(failures, "server did not exit within 60s of SIGTERM")
        return
    if proc.returncode != 0:
        _fail(failures, f"server exited {proc.returncode}; tail: "
              f"{output[-400:]}")
    elif "telemetry: run" not in output:
        _fail(failures, f"server session was not recorded to the "
              f"warehouse; tail: {output[-400:]}")
    else:
        _ok("clean shutdown, session recorded to the warehouse")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--telemetry-db", default="serve-telemetry.db", metavar="PATH",
        help="warehouse both sessions append to (default serve-telemetry.db)",
    )
    parser.add_argument(
        "--trace-out", default="SERVE_trace.json", metavar="FILE",
        help="Chrome trace of session 2's server (default SERVE_trace.json)",
    )
    parser.add_argument(
        "--sessions", type=int, default=2,
        help="server sessions to drill (default 2: the second gives "
        "'obs diff' a same-config baseline)",
    )
    args = parser.parse_args(argv)

    print("computing the direct-run reference bytes...")
    study = harness.run_study()
    expected = json.dumps(
        harness.study_to_dict(study), indent=1
    ).encode()

    failures: list = []
    for session in range(1, args.sessions + 1):
        trace = args.trace_out if session == args.sessions else None
        print(f"\n--- session {session}/{args.sessions} ---")
        proc, client = boot_server(args.telemetry_db, trace)
        try:
            e2e_leg(client, failures, expected)
            dedup_leg(client, failures)
            concurrency_leg(client, failures)
            backpressure_leg(client, failures)
        finally:
            shutdown_leg(proc, failures)

    if failures:
        print(f"\nSERVICE SMOKE FAILED ({len(failures)} problem(s)):")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nservice smoke OK: e2e, dedup, concurrency, backpressure, "
          "shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
